"""The PEACE short group signature (paper Section IV; variation of BS04).

Boneh-Shacham's verifier-local-revocation group signature, with the key
generation modified exactly as the paper prescribes: the member secret
exponent is split into a *user-group component* ``grp_i`` (shared by all
members of user group i) and a *member component* ``x_j``, so that

    A_{i,j} = g1 ^ (1 / (gamma + grp_i + x_j)).

Opening a signature with the revocation token ``A_{i,j}`` then reveals
(to the network operator, who keeps the ``A -> grp_i`` map) only which
user group the signer belongs to -- the paper's "sophisticated privacy".

The signature of knowledge follows the paper's steps 2.2.1-2.2.4 / 3.2
verbatim; products of powers are computed through
:meth:`PairingGroup.multi_exp` so the instrumented operation counts line
up with the paper's claims (8 exponentiations + 2 pairings to sign, 6
exponentiations + (3 + 2*|URL|) pairings to verify).

Two revocation-check modes are provided:

* **per-signature generators** (the default, ``period=None``): ``(u_hat,
  v_hat)`` are derived from the message and signature randomness; the
  revocation check Eq.3 costs 2 pairings per token.
* **per-period generators** (``period=...``): ``(u_hat, v_hat)`` depend
  only on the time period, so ``e(A, u_hat)`` can be precomputed per
  token per period and checking is a constant-cost table lookup -- the
  "far more efficient revocation check ... with a little bit sacrifice
  on user privacy" of Section V.C (signatures by the same user within
  one period become linkable).

**The engine layer.**  Every ``gpk`` owns a lazily-built
:class:`CryptoEngine` holding precomputation tables for the fixed system
parameters (``g1``, ``g2``, ``w``, the cached base pairing ``e(g1,
g2)``, and a bounded cache of per-period generator contexts).  The
engine changes wall-clock cost only: whenever a table evaluation stands
in for an abstract operation the same :mod:`repro.instrument` note is
recorded, so the measured counts above hold with the engine on or off.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import instrument, obs
from repro.errors import (
    EncodingError,
    InvalidSignature,
    ParameterError,
    RevokedKeyError,
)
from repro.pairing.fields import Fp2
from repro.pairing.group import (
    FixedBaseExp,
    G1Element,
    G2Element,
    GTElement,
    PairingGroup,
)
from repro.pairing.precompute import PairingTable
from repro.pairing.tate import tate_pairing


@dataclass(frozen=True)
class GroupPublicKey:
    """``gpk = (g1, g2, w)`` with ``w = g2^gamma``.

    ``epoch`` is operator-side bookkeeping (which key generation this
    is), not key material: it is excluded from equality/hashing and from
    the wire encoding -- ``decode`` yields epoch 0 and the operator
    re-stamps it.  The revocation layer keys its tag cache and period
    derivation on it (see :mod:`repro.core.revocation`).
    """

    group: PairingGroup
    w: G2Element
    epoch: int = field(default=0, compare=False)

    @property
    def g1(self) -> G1Element:
        return self.group.g1

    @property
    def g2(self) -> G2Element:
        return self.group.g2

    @property
    def engine(self) -> "CryptoEngine":
        """This key's precomputation engine, built on first access.

        Cached on the instance (not a module global) so the tables die
        with the gpk; equality and hashing still compare only the
        declared ``(group, w)`` fields.
        """
        engine = self.__dict__.get("_engine")
        if engine is None:
            engine = CryptoEngine(self)
            object.__setattr__(self, "_engine", engine)
        return engine

    def encode(self) -> bytes:
        return self.g1.encode() + self.g2.encode() + self.w.encode()

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "GroupPublicKey":
        size = group.params.point_bytes
        if len(data) != 3 * size:
            raise EncodingError("bad gpk encoding length")
        g1 = group.decode_g1(data[:size])
        g2 = group.decode_g2(data[size:2 * size])
        if g1 != group.g1 or g2 != group.g2:
            raise EncodingError("gpk generators disagree with system params")
        return cls(group, group.decode_g2(data[2 * size:]))


@dataclass(frozen=True)
class GroupMasterSecret:
    """The network operator's ``gamma`` (never leaves NO)."""

    gamma: int


@dataclass(frozen=True)
class GroupPrivateKey:
    """``gsk[i, j] = (A_{i,j}, grp_i, x_j)`` held by one network user."""

    a: G1Element
    grp: int
    x: int
    index: Tuple[int, int]  # ([i, j]) bookkeeping index

    @property
    def exponent_sum(self) -> int:
        """The effective BS04 member exponent ``grp_i + x_j``."""
        return self.grp + self.x


@dataclass(frozen=True)
class RevocationToken:
    """``grt[i, j] = A_{i,j}``: enough to test Eq.3, nothing more."""

    a: G1Element

    def encode(self) -> bytes:
        return self.a.encode()

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "RevocationToken":
        return cls(group.decode_g1(data))


@dataclass(frozen=True)
class GroupSignature:
    """``(r, T1, T2, c, s_alpha, s_x, s_delta)``: 2 G1 + 5 Z_r elements."""

    r: int
    t1: G1Element
    t2: G1Element
    c: int
    s_alpha: int
    s_x: int
    s_delta: int

    def encode(self) -> bytes:
        group = self.t1.group
        return b"".join((
            group.encode_scalar(self.r),
            self.t1.encode(),
            self.t2.encode(),
            group.encode_scalar(self.c),
            group.encode_scalar(self.s_alpha),
            group.encode_scalar(self.s_x),
            group.encode_scalar(self.s_delta),
        ))

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "GroupSignature":
        s = group.params.scalar_bytes
        q = group.params.point_bytes
        if len(data) != 5 * s + 2 * q:
            raise EncodingError("bad group signature length")
        offset = 0

        def take(width: int) -> bytes:
            nonlocal offset
            chunk = data[offset:offset + width]
            offset += width
            return chunk

        return cls(
            r=group.decode_scalar(take(s)),
            t1=group.decode_g1(take(q)),
            t2=group.decode_g1(take(q)),
            c=group.decode_scalar(take(s)),
            s_alpha=group.decode_scalar(take(s)),
            s_x=group.decode_scalar(take(s)),
            s_delta=group.decode_scalar(take(s)),
        )

    @staticmethod
    def encoded_size(group: PairingGroup) -> int:
        """Serialized byte size: 2 points + 5 scalars."""
        return 2 * group.params.point_bytes + 5 * group.params.scalar_bytes


# ---------------------------------------------------------------------------
# Key generation (paper Section IV.A, NO side)
# ---------------------------------------------------------------------------


def keygen_master(group: PairingGroup,
                  rng: Optional[random.Random] = None
                  ) -> Tuple[GroupPublicKey, GroupMasterSecret]:
    """Generate ``(gpk, gamma)``: steps 1) of the scheme setup."""
    rng = rng or random.SystemRandom()
    gamma = group.random_scalar(rng)
    w = group.g2 ** gamma
    return GroupPublicKey(group, w), GroupMasterSecret(gamma)


def issue_member_key(group: PairingGroup, master: GroupMasterSecret,
                     grp: int, index: Tuple[int, int],
                     rng: Optional[random.Random] = None,
                     engine: Optional["CryptoEngine"] = None
                     ) -> GroupPrivateKey:
    """Generate one SDH tuple ``(A_{i,j}, grp_i, x_j)`` (setup step 3).

    ``x_j`` is sampled until ``gamma + grp_i + x_j != 0 (mod r)`` as the
    paper requires (the inverse must exist).  Passing the gpk's
    ``engine`` routes the ``g1`` exponentiation through its fixed-base
    table -- same result, same single counted "exp", faster bulk
    enrollment.
    """
    rng = rng or random.SystemRandom()
    order = group.order
    while True:
        x = group.random_scalar(rng)
        denominator = (master.gamma + grp + x) % order
        if denominator != 0:
            break
    exponent = pow(denominator, -1, order)
    if engine is not None:
        a = engine.g1_exp(exponent)
    else:
        a = group.g1 ** exponent
    return GroupPrivateKey(a=a, grp=grp % order, x=x, index=index)


# ---------------------------------------------------------------------------
# Generator derivation (Eq.1) -- shared by sign and verify
# ---------------------------------------------------------------------------


def derive_generators(gpk: GroupPublicKey, message: bytes, r: int,
                      period: Optional[bytes] = None
                      ) -> Tuple[G2Element, G2Element, G1Element, G1Element]:
    """Return ``(u_hat, v_hat, u, v)`` per Eq.1, counting 2 psi maps.

    With ``period`` set, the generators depend only on ``(gpk, period)``
    -- the linkable-within-period variant enabling O(1) revocation
    checks (Section V.C).
    """
    group = gpk.group
    if period is None:
        u_hat, v_hat = group.hash_h0(gpk.encode(), message,
                                     group.encode_scalar(r))
    else:
        u_hat, v_hat = group.hash_h0(gpk.encode(), b"period", period)
    u = group.psi(u_hat)
    v = group.psi(v_hat)
    return u_hat, v_hat, u, v


# ---------------------------------------------------------------------------
# The crypto engine: per-gpk precomputation tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratorContext:
    """Generators for one (message, r) or one period, plus their tables.

    ``u_table`` / ``v_table`` are present only in period mode, where
    their build cost amortizes across every signature of the period;
    per-signature generators are used once or twice and are not worth
    tabulating (the revocation scan builds a throwaway ``u_hat`` table
    itself when the URL is long enough to repay it).
    """

    u_hat: G2Element
    v_hat: G2Element
    u: G1Element
    v: G1Element
    u_table: Optional[PairingTable] = None
    v_table: Optional[PairingTable] = None
    #: gpk epoch the memoized ``u_table`` was built under.  The scan
    #: refuses a memo whose epoch disagrees with the verifying gpk's, so
    #: a context replayed across a key rotation rebuilds instead of
    #: serving a table for the retired epoch's generators.
    u_table_epoch: int = 0


class CryptoEngine:
    """Bounded precomputation state owned by one :class:`GroupPublicKey`.

    Holds pairing tables for the fixed parameters ``g2`` and ``w``, a
    fixed-base exponentiation table for ``g1``, the cached base pairing
    ``e(g1, g2)``, and an LRU cache (at most ``max_periods`` entries) of
    per-period generator contexts.  Everything is built lazily on first
    use and protected by a lock so a multi-threaded router can share one
    engine.

    Invariant: using the engine never changes an instrumented operation
    count.  A table evaluation notes the same "pairing"/"exp" the naive
    computation would; a period-cache hit replays the notes the fresh
    derivation would have produced.  The single deliberate exception is
    the legacy ``verify(..., precomputed=True)`` mode, whose documented
    contract is precisely "the cached base pairing is not re-counted".
    """

    #: Bound on the per-URL token line-table cache (distinct revocation
    #: lists seen by one gpk at a time; each entry is |URL| tables).
    max_urls = 4

    def __init__(self, gpk: "GroupPublicKey", max_periods: int = 16) -> None:
        if max_periods < 1:
            raise ParameterError("engine period cache needs at least 1 slot")
        self.gpk = gpk
        self.group = gpk.group
        self.max_periods = max_periods
        self._lock = threading.Lock()
        self._g2_table: Optional[PairingTable] = None
        self._w_table: Optional[PairingTable] = None
        self._g2_naf_steps: Optional[list] = None
        self._w_naf_steps: Optional[list] = None
        self._g1_fixed: Optional[FixedBaseExp] = None
        self._base: Optional[GTElement] = None
        self._gt_table = None
        self._periods: "OrderedDict[bytes, GeneratorContext]" = OrderedDict()
        self._token_steps: "OrderedDict[tuple, list]" = OrderedDict()

    # -- fixed-parameter tables -----------------------------------------

    def _build_table(self, base) -> PairingTable:
        """Build one pairing table, reporting the build to the obs layer."""
        reg = obs.active()
        start = reg.clock() if reg is not None else 0.0
        table = self.group.make_pairing_table(base)
        if reg is not None:
            reg.counter("engine.table_build_total")
            reg.observe("engine.table_build_seconds", reg.clock() - start)
        return table

    @property
    def g2_table(self) -> PairingTable:
        with self._lock:
            if self._g2_table is None:
                self._g2_table = self._build_table(self.gpk.g2)
            return self._g2_table

    @property
    def w_table(self) -> PairingTable:
        with self._lock:
            if self._w_table is None:
                self._w_table = self._build_table(self.gpk.w)
            return self._w_table

    def _build_naf_steps(self, base) -> list:
        """NAF line steps for a fixed base, reported like a table build."""
        from repro.pairing import fastpath

        reg = obs.active()
        start = reg.clock() if reg is not None else 0.0
        steps = fastpath.naf_steps(self.group.curve, base.point)
        if reg is not None:
            reg.counter("engine.table_build_total")
            reg.observe("engine.table_build_seconds", reg.clock() - start)
        return steps

    @property
    def g2_naf_steps(self) -> list:
        """NAF Miller steps for ``g2`` (batch core only; FE-identical)."""
        with self._lock:
            cached = self._g2_naf_steps
        if cached is None:
            cached = self._build_naf_steps(self.gpk.g2)
            with self._lock:
                if self._g2_naf_steps is None:
                    self._g2_naf_steps = cached
                cached = self._g2_naf_steps
        return cached

    @property
    def w_naf_steps(self) -> list:
        """NAF Miller steps for ``w`` (batch core only; FE-identical)."""
        with self._lock:
            cached = self._w_naf_steps
        if cached is None:
            cached = self._build_naf_steps(self.gpk.w)
            with self._lock:
                if self._w_naf_steps is None:
                    self._w_naf_steps = cached
                cached = self._w_naf_steps
        return cached

    def g1_exp(self, exponent: int) -> G1Element:
        """``g1 ** exponent`` via the fixed-base table (one "exp")."""
        with self._lock:
            if self._g1_fixed is None:
                self._g1_fixed = self.group.make_fixed_base(self.gpk.g1)
            fixed = self._g1_fixed
        return fixed.exp(exponent)

    def pair_g2(self, element: G1Element) -> GTElement:
        """``e(element, g2)`` via stored lines (symmetric swap)."""
        return self.group.pair_with(self.g2_table, element)

    def pair_w(self, element: G1Element) -> GTElement:
        """``e(element, w)`` via stored lines (symmetric swap)."""
        return self.group.pair_with(self.w_table, element)

    def base_pairing(self, count_on_hit: bool = True) -> GTElement:
        """The fixed pairing ``e(g1, g2)``, computed once per gpk.

        A cache hit still notes one "pairing" so counts match the
        paper's accounting; ``count_on_hit=False`` is the legacy
        ``precomputed=True`` contract where the hit is free.
        """
        with self._lock:
            cached = self._base
        if cached is None:
            obs.counter("engine.base_pairing_miss_total")
            value = self.group.pair(self.gpk.g1, self.gpk.g2)
            with self._lock:
                if self._base is None:
                    self._base = value
            return value
        obs.counter("engine.base_pairing_hit_total")
        if count_on_hit:
            instrument.note("pairing")
        return cached

    # -- batch-core support tables ----------------------------------------

    @property
    def gt_table(self):
        """Signed-window GT table for the base pairing ``e(g1, g2)``.

        Built once per gpk from the quietly-warmed base pairing value
        (table construction, like every precomputation here, is not an
        instrumented operation); the batch core uses it for the
        ``base ** -c`` factor of R2 and notes the same one "exp_gt" the
        naive ``**`` would.
        """
        from repro.pairing import fastpath

        with self._lock:
            cached_base = self._base
            cached_table = self._gt_table
        if cached_table is not None:
            return cached_table
        if cached_base is None:
            # Quiet warm of the fixed pairing value: the *use* sites
            # (base_pairing with count_on_hit) keep noting one pairing
            # per verification, exactly as before.
            value = GTElement(
                tate_pairing(self.group.curve, self.gpk.g1.point,
                             self.gpk.g2.point), self.group)
            with self._lock:
                if self._base is None:
                    self._base = value
                cached_base = self._base
        table = fastpath.GTFixedBase(cached_base.value, self.group.order)
        with self._lock:
            if self._gt_table is None:
                self._gt_table = table
            return self._gt_table

    def token_steps(self, url: Sequence["RevocationToken"]) -> list:
        """Miller line steps for each token ``A_k`` of a revocation list.

        The Eq.3 scan pairs every token against a *varying* ``u_hat``;
        by symmetry ``e(A_k, u_hat)`` evaluates through a table built
        for the fixed ``A_k``, so one build per token amortizes over
        every batch scanned against the same URL.  Cached per-URL
        (bounded LRU of :attr:`max_urls` lists); building is
        uninstrumented per the engine convention, evaluations note their
        pairings at the call sites.
        """
        from repro.pairing import fastpath

        key = tuple(token.a.point for token in url)
        with self._lock:
            cached = self._token_steps.get(key)
            if cached is not None:
                self._token_steps.move_to_end(key)
        if cached is not None:
            obs.counter("engine.token_table_hit_total")
            return cached
        reg = obs.active()
        start = reg.clock() if reg is not None else 0.0
        curve = self.group.curve
        steps = [fastpath.naf_steps(curve, point)
                 if not point.is_infinity() else []
                 for point in key]
        if reg is not None:
            reg.counter("engine.token_table_build_total", len(url))
            reg.observe("engine.table_build_seconds", reg.clock() - start)
        with self._lock:
            self._token_steps[key] = steps
            self._token_steps.move_to_end(key)
            while len(self._token_steps) > self.max_urls:
                self._token_steps.popitem(last=False)
        return steps

    # -- per-period generator cache -------------------------------------

    def generators(self, message: bytes, r: int,
                   period: Optional[bytes]) -> GeneratorContext:
        """Derive (or recall) the Eq.1 generators for a verification.

        Per-signature mode always derives fresh.  Period mode consults
        the LRU cache; a hit replays the notes (2 hash_to_group, 2 psi)
        the derivation would have recorded, keeping counts invariant.
        """
        if period is None:
            u_hat, v_hat, u, v = derive_generators(self.gpk, message, r)
            return GeneratorContext(u_hat, v_hat, u, v)
        key = bytes(period)
        with self._lock:
            context = self._periods.get(key)
            if context is not None:
                self._periods.move_to_end(key)
        if context is not None:
            obs.counter("engine.period_cache_hit_total")
            instrument.note("hash_to_group", 2)
            instrument.note("psi", 2)
            return context
        obs.counter("engine.period_cache_miss_total")
        u_hat, v_hat, u, v = derive_generators(self.gpk, message, r, period)
        context = GeneratorContext(
            u_hat, v_hat, u, v,
            u_table=self._build_table(u_hat),
            v_table=self._build_table(v_hat),
            u_table_epoch=self.gpk.epoch)
        with self._lock:
            self._periods[key] = context
            self._periods.move_to_end(key)
            while len(self._periods) > self.max_periods:
                self._periods.popitem(last=False)
        return context


def _challenge(gpk: GroupPublicKey, message: bytes, r: int,
               t1: G1Element, t2: G1Element,
               r1: G1Element, r2: GTElement, r3: G1Element) -> int:
    """The Fiat-Shamir challenge ``c = H(gpk, M, r, T1, T2, R1, R2, R3)``."""
    group = gpk.group
    return group.hash_to_scalar(
        gpk.encode(), message, group.encode_scalar(r),
        t1.encode(), t2.encode(),
        r1.encode(), r2.encode(), r3.encode())


# ---------------------------------------------------------------------------
# Sign (paper steps 2.2.1 - 2.2.4)
# ---------------------------------------------------------------------------


def sign(gpk: GroupPublicKey, gsk: GroupPrivateKey, message: bytes,
         rng: Optional[random.Random] = None,
         period: Optional[bytes] = None,
         use_engine: bool = True) -> GroupSignature:
    """Produce a group signature on ``message``.

    Instrumented cost: 8 exponentiations (6 G1 exps/multi-exps plus the
    2 psi applications, which the paper prices as exponentiations) and
    2 pairings -- matching Section V.C.  With ``use_engine`` (default)
    the two pairings evaluate through the gpk engine's ``g2``/``w``
    line tables; counts are identical either way.
    """
    group = gpk.group
    rng = rng or random.SystemRandom()
    order = group.order
    engine = gpk.engine if use_engine else None
    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0

    with obs.span("groupsig.sign"):
        r = group.random_scalar(rng)
        _u_hat, _v_hat, u, v = derive_generators(gpk, message, r, period)

        alpha = group.random_scalar(rng)
        t1 = u ** alpha
        t2 = gsk.a * (v ** alpha)
        delta = gsk.exponent_sum * alpha % order

        r_alpha = group.random_scalar(rng)
        r_x = group.random_scalar(rng)
        r_delta = group.random_scalar(rng)

        r1 = u ** r_alpha
        # R2 = e(T2, g2)^r_x * e(v, w)^-r_alpha * e(v, g2)^-r_delta, folded
        # into two pairings: e(T2^r_x * v^-r_delta, g2) * e(v^-r_alpha, w).
        left = group.multi_exp([(t2, r_x), (v, -r_delta)])
        right = v ** (-r_alpha % order)
        if engine is not None:
            r2 = engine.pair_g2(left) * engine.pair_w(right)
        else:
            r2 = group.pair(left, gpk.g2) * group.pair(right, gpk.w)
        r3 = group.multi_exp([(t1, r_x), (u, -r_delta)])

        c = _challenge(gpk, message, r, t1, t2, r1, r2, r3)
        s_alpha = (r_alpha + c * alpha) % order
        s_x = (r_x + c * gsk.exponent_sum) % order
        s_delta = (r_delta + c * delta) % order
    if reg is not None:
        reg.counter("groupsig.sign_total")
        reg.observe("groupsig.sign_seconds", reg.clock() - start)
    return GroupSignature(r, t1, t2, c, s_alpha, s_x, s_delta)


# ---------------------------------------------------------------------------
# Verify (paper step 3.2) and revocation (Eq.3 / step 3.3)
# ---------------------------------------------------------------------------


def _note_verify_outcome(reg, start: float, error: Optional[Exception]
                         ) -> None:
    """Record one verification's outcome counter + latency histogram.

    Shared by every verification entry point (:func:`verify`,
    :func:`verify_one`, :func:`verify_batch`) so the metric names are
    identical whichever path classified the signature.
    """
    if reg is None:
        return
    if error is None:
        outcome = "accept"
    elif isinstance(error, RevokedKeyError):
        outcome = "reject_revoked"
    else:
        outcome = "reject_invalid"
    reg.counter(f"groupsig.verify_{outcome}_total")
    reg.observe("groupsig.verify_seconds", reg.clock() - start)


def verify(gpk: GroupPublicKey, message: bytes, signature: GroupSignature,
           url: Sequence[RevocationToken] = (),
           period: Optional[bytes] = None,
           check_revocation: bool = True,
           precomputed: bool = False,
           use_engine: bool = True) -> None:
    """Verify a group signature and (optionally) its revocation status.

    Raises :class:`InvalidSignature` on a bad proof and
    :class:`RevokedKeyError` when a token in ``url`` matches.
    Instrumented cost: 6 exponentiations and ``3 + 2*len(url)``
    pairings, per Section V.C -- with or without the engine, which
    trades memory for wall-clock time but notes the same counts.

    With ``precomputed=True``, the fixed pairing ``e(g1, g2)`` comes
    from the engine's cache without being re-counted, reducing the base
    cost to ``2 + 2*len(url)`` pairings -- an implementation
    optimization the paper's accounting does not take (its count keeps
    the third pairing), kept off by default so measured counts match
    the paper.
    """
    group = gpk.group
    engine = gpk.engine if use_engine else None
    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0
    try:
        with obs.span("groupsig.verify"):
            if engine is not None:
                context = engine.generators(message, signature.r, period)
            else:
                u_hat, v_hat, u, v = derive_generators(gpk, message,
                                                       signature.r, period)
                context = GeneratorContext(u_hat, v_hat, u, v)

            t1, t2 = signature.t1, signature.t2
            if t1.is_identity() or t2.is_identity():
                raise InvalidSignature("degenerate T1/T2")
            # Small-subgroup hardening: decoded points satisfy the curve
            # equation, but the curve's cofactor is large; T1/T2 must lie
            # in the prime-order subgroup or the SPK algebra is off-group.
            curve = group.curve
            if not (curve.in_subgroup(t1.point)
                    and curve.in_subgroup(t2.point)):
                raise InvalidSignature(
                    "T1/T2 outside the prime-order subgroup")

            _verify_spk(gpk, message, signature, context, engine,
                        precomputed)

            if check_revocation and url:
                _scan_url(gpk, signature, url, context, engine)
    except (InvalidSignature, RevokedKeyError) as exc:
        _note_verify_outcome(reg, start, exc)
        raise
    _note_verify_outcome(reg, start, None)


def _verify_spk(gpk: GroupPublicKey, message: bytes,
                signature: GroupSignature, context: GeneratorContext,
                engine: Optional["CryptoEngine"],
                precomputed: bool = False) -> None:
    """Recompute the Fiat-Shamir challenge (Eq.2); 6 exps + 3 pairings.

    Assumes T1/T2 have already passed the structural and subgroup
    checks (``verify`` and ``verify_batch`` both enforce them first).
    """
    group = gpk.group
    order = group.order
    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0
    with obs.span("groupsig.spk"):
        u, v = context.u, context.v
        t1, t2, c = signature.t1, signature.t2, signature.c
        s_alpha, s_x, s_delta = (signature.s_alpha, signature.s_x,
                                 signature.s_delta)

        r1 = group.multi_exp([(u, s_alpha), (t1, -c % order)])
        # R2 = e(T2^s_x * v^-s_delta, g2) * e(v^-s_alpha * T2^c, w)
        #      * e(g1, g2)^-c
        left = group.multi_exp([(t2, s_x), (v, -s_delta % order)])
        right = group.multi_exp([(v, -s_alpha % order), (t2, c)])
        if engine is not None:
            base = engine.base_pairing(count_on_hit=not precomputed)
            r2 = (engine.pair_g2(left) * engine.pair_w(right)
                  * (base ** (-c % order)))
        else:
            if precomputed:
                base = gpk.engine.base_pairing(count_on_hit=False)
            else:
                base = group.pair(gpk.g1, gpk.g2)
            r2 = (group.pair(left, gpk.g2) * group.pair(right, gpk.w)
                  * (base ** (-c % order)))
        r3 = group.multi_exp([(t1, s_x), (u, -s_delta % order)])

        expected = _challenge(gpk, message, signature.r, t1, t2, r1, r2, r3)
    if reg is not None:
        reg.observe("groupsig.spk_seconds", reg.clock() - start)
    if expected != c:
        raise InvalidSignature("challenge mismatch (Eq.2 failed)")


def _scan_url(gpk: GroupPublicKey, signature: GroupSignature,
              url: Sequence[RevocationToken], context: GeneratorContext,
              engine: Optional["CryptoEngine"]) -> None:
    """Eq.3 revocation scan; 2 counted pairings per token examined.

    The engine path rewrites Eq.3 in *tag form*: by bilinearity (and
    ``e(u, v_hat) == e(v, u_hat)`` in this symmetric setting)

        e(T2 / A, u_hat) == e(T1, v_hat)
            <=>  e(T2, u_hat) / e(T1, v_hat) == e(A, u_hat),

    so the scan computes the left side once and one ``u_hat``-table
    evaluation per token -- an exact algebraic equivalence, not a
    probabilistic screen.  Counting is unchanged: the paper's algorithm
    spends 2 pairings on every token it examines, and the short-circuit
    on the first match is preserved.
    """
    group = gpk.group
    u_hat, v_hat = context.u_hat, context.v_hat
    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0
    hit: Optional[int] = None
    with obs.span("groupsig.scan"):
        if engine is None or len(url) < 2:
            # The tag rewrite only pays for itself from the second token
            # on.
            for token_index, token in enumerate(url):
                if _token_encoded(group, signature, token, u_hat, v_hat):
                    hit = token_index
                    break
        else:
            curve = group.curve
            u_table = context.u_table
            if u_table is None or context.u_table_epoch != gpk.epoch:
                # Build once and memoize on the context: repeat scans
                # with the same generators (re-verification, audits, the
                # batch core's per-item path) must not pay the build
                # again.  The dataclass is frozen to keep the *derived*
                # fields immutable; the table is a pure cache of them.
                # The memo is keyed on the gpk epoch: a context carried
                # across a key rotation (or a table poisoned before a
                # URL delta) must rebuild, never serve stale lines.
                u_table = group.make_pairing_table(u_hat)
                object.__setattr__(context, "u_table", u_table)
                object.__setattr__(context, "u_table_epoch", gpk.epoch)
            if context.v_table is not None:
                t1_side = context.v_table.pairing(signature.t1.point)
            else:
                t1_side = tate_pairing(curve, signature.t1.point,
                                       v_hat.point)
            tau = u_table.pairing(signature.t2.point) * t1_side.inverse()
            for token_index, token in enumerate(url):
                instrument.note("pairing", 2)
                if u_table.pairing(token.a.point) == tau:
                    hit = token_index
                    break
    if reg is not None:
        examined = len(url) if hit is None else hit + 1
        reg.counter("groupsig.scan_tokens_total", examined)
        reg.counter("groupsig.scan_total")
        reg.observe("groupsig.scan_seconds", reg.clock() - start)
    if hit is not None:
        raise _revoked_error(hit)


def _revoked_error(token_index: int) -> RevokedKeyError:
    """Build the Eq.3 match error, recording *which* token matched.

    ``token_index`` lets callers (the operator's audit trail, the
    parallel verification pool's identity checks) confirm that two scans
    opened the same revocation entry, not merely that both rejected.
    """
    error = RevokedKeyError(
        f"signer's key appears in the URL (token {token_index})")
    error.token_index = token_index
    return error


def _token_encoded(group: PairingGroup, signature: GroupSignature,
                   token: RevocationToken,
                   u_hat: G2Element, v_hat: G2Element) -> bool:
    """Eq.3: is token ``A`` encoded in ``(T1, T2)``? (2 pairings)."""
    lhs = group.pair(signature.t2 / token.a, u_hat)
    rhs = group.pair(signature.t1, v_hat)
    return lhs == rhs


def verify_batch(gpk: GroupPublicKey,
                 batch: Sequence[Tuple[bytes, GroupSignature]],
                 url: Sequence[RevocationToken] = (),
                 period: Optional[bytes] = None,
                 check_revocation: bool = True,
                 rng: Optional[random.Random] = None,
                 screen_subgroup: bool = False,
                 use_engine: bool = True) -> List[Optional[Exception]]:
    """Verify many ``(message, signature)`` pairs against one gpk.

    Returns one entry per input: ``None`` on acceptance, or the
    :class:`InvalidSignature` / :class:`RevokedKeyError` instance that
    individual verification would have raised.  With the default
    options the accept/reject outcome is *exactly* the per-item
    :func:`verify` outcome -- batching shares the engine's tables and
    (in period mode) the generator derivation, which changes wall-clock
    cost only.

    ``screen_subgroup=True`` replaces the per-item subgroup membership
    checks with a single small-exponent screen: one multi-scalar
    multiplication testing ``sum_i delta_i * r * P_i == O`` for random
    64-bit ``delta_i`` over every T1/T2 in the batch, falling back to
    exact per-item checks when the screen fails (so honest batches are
    classified identically).  The screen is sound only against
    *non-adversarial* corruption: this curve's cofactor is even, so an
    attacker can craft off-subgroup points whose small-torsion
    components cancel in the sum (or vanish for half the ``delta``
    draws) and slip past the screen.  Leave it off unless every
    signature in the batch comes from an authenticated channel where
    off-curve tampering is out of scope; the SPK challenge check is
    always exact either way.

    With the engine enabled (and no screen requested) items are
    classified by the batch verification core
    (:mod:`repro.core.batch_core`): fused Miller/subgroup kernels,
    per-URL token line tables and a shared final-exponentiation tail --
    outcomes, ``token_index`` attributes, and instrumented operation
    counts are bit-identical to this function's serial path, enforced
    per item by an exact fallback.
    """
    group = gpk.group
    engine = gpk.engine if use_engine else None
    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0

    if engine is not None and not screen_subgroup:
        from repro.core import batch_core

        results = [
            batch_core.classify_item(gpk, message, signature, url, period,
                                     check_revocation)
            for message, signature in batch
        ]
        _note_batch_outcomes(reg, start, batch, results)
        return results

    results: List[Optional[Exception]] = [None] * len(batch)

    live: List[int] = []
    for index, (_message, signature) in enumerate(batch):
        if signature.t1.is_identity() or signature.t2.is_identity():
            results[index] = InvalidSignature("degenerate T1/T2")
        else:
            live.append(index)

    curve = group.curve

    def exact_subgroup(indices: Sequence[int]) -> List[int]:
        passed = []
        for index in indices:
            signature = batch[index][1]
            if (curve.in_subgroup(signature.t1.point)
                    and curve.in_subgroup(signature.t2.point)):
                passed.append(index)
            else:
                results[index] = InvalidSignature(
                    "T1/T2 outside the prime-order subgroup")
        return passed

    if screen_subgroup and len(live) >= 2:
        rng = rng or random.SystemRandom()
        pairs = []
        for index in live:
            signature = batch[index][1]
            pairs.append((signature.t1.point,
                          rng.randrange(1, 1 << 64) * curve.r))
            pairs.append((signature.t2.point,
                          rng.randrange(1, 1 << 64) * curve.r))
        if curve.multi_mul_raw(pairs).is_infinity():
            passed = list(live)
        else:
            passed = exact_subgroup(live)
    else:
        passed = exact_subgroup(live)

    for index in passed:
        message, signature = batch[index]
        if engine is not None:
            context = engine.generators(message, signature.r, period)
        else:
            u_hat, v_hat, u, v = derive_generators(gpk, message,
                                                   signature.r, period)
            context = GeneratorContext(u_hat, v_hat, u, v)
        try:
            _verify_spk(gpk, message, signature, context, engine)
            if check_revocation and url:
                _scan_url(gpk, signature, url, context, engine)
        except (InvalidSignature, RevokedKeyError) as exc:
            results[index] = exc
    _note_batch_outcomes(reg, start, batch, results)
    return results


def _note_batch_outcomes(reg, start: float, batch: Sequence,
                         results: Sequence[Optional[Exception]]) -> None:
    """The shared obs tail of :func:`verify_batch` (both paths)."""
    if reg is None:
        return
    reg.counter("groupsig.verify_batch_total")
    reg.counter("groupsig.verify_batch_items_total", len(batch))
    reg.observe("groupsig.verify_batch_seconds", reg.clock() - start)
    for error in results:
        if error is None:
            reg.counter("groupsig.verify_accept_total")
        elif isinstance(error, RevokedKeyError):
            reg.counter("groupsig.verify_reject_revoked_total")
        else:
            reg.counter("groupsig.verify_reject_invalid_total")


def verify_one(gpk: GroupPublicKey, message: bytes,
               signature: GroupSignature,
               url: Sequence[RevocationToken] = (),
               period: Optional[bytes] = None,
               check_revocation: bool = True,
               use_engine: bool = True) -> Optional[Exception]:
    """Classify one item exactly as default-mode :func:`verify_batch`.

    Returns ``None`` / :class:`InvalidSignature` /
    :class:`RevokedKeyError` instead of raising, and runs the checks in
    the batch path's order: structural and subgroup rejection happen
    *before* generator derivation, so a degenerate signature records
    zero operations (:func:`verify` derives generators first and counts
    2 hash_to_group + 2 psi even on such input).  The verifier pool's
    workers use this to stay count-identical with the serial batch.
    """
    group = gpk.group
    engine = gpk.engine if use_engine else None
    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0
    error = _classify_one(gpk, message, signature, url, period,
                          check_revocation, engine, group)
    _note_verify_outcome(reg, start, error)
    return error


def _classify_one(gpk: GroupPublicKey, message: bytes,
                  signature: GroupSignature,
                  url: Sequence[RevocationToken],
                  period: Optional[bytes], check_revocation: bool,
                  engine: Optional["CryptoEngine"],
                  group: PairingGroup) -> Optional[Exception]:
    t1, t2 = signature.t1, signature.t2
    if t1.is_identity() or t2.is_identity():
        return InvalidSignature("degenerate T1/T2")
    curve = group.curve
    if not (curve.in_subgroup(t1.point) and curve.in_subgroup(t2.point)):
        return InvalidSignature("T1/T2 outside the prime-order subgroup")
    if engine is not None:
        context = engine.generators(message, signature.r, period)
    else:
        u_hat, v_hat, u, v = derive_generators(gpk, message, signature.r,
                                               period)
        context = GeneratorContext(u_hat, v_hat, u, v)
    try:
        _verify_spk(gpk, message, signature, context, engine)
        if check_revocation and url:
            _scan_url(gpk, signature, url, context, engine)
    except (InvalidSignature, RevokedKeyError) as exc:
        return exc
    return None


def validate_member_key(gpk: GroupPublicKey, key: GroupPrivateKey) -> bool:
    """Check one SDH tuple: ``e(A, w * g2^(grp+x)) == e(g1, g2)``.

    The relation every honestly-issued :func:`issue_member_key` output
    satisfies.  Instrumented cost: 1 exponentiation + 2 pairings.
    """
    return validate_member_keys_batch(gpk, [key])[0]


def validate_member_keys_batch(gpk: GroupPublicKey,
                               keys: Sequence[GroupPrivateKey],
                               rng: Optional[random.Random] = None
                               ) -> List[bool]:
    """Validate many SDH member keys with one randomized pairing product.

    Folds every key's relation ``e(A_i, w * g2^(grp_i + x_i)) ==
    e(g1, g2)`` into a single :meth:`PairingGroup.batch_pairing_check`
    -- one Miller accumulation and one final exponentiation for the
    whole batch, with fresh 64-bit exponents so two tampered keys
    cannot cancel each other's error terms.  When the combined check
    fails, the batch is bisected to localize the offender(s): a
    single-key "batch" is an *exact* check (the order ``r`` is prime
    and the nonzero delta is below it), so the returned booleans are
    identical to per-key :func:`validate_member_key` verdicts.
    """
    if not keys:
        return []
    group = gpk.group
    order = group.order
    rng = rng or random.SystemRandom()
    base = gpk.engine.base_pairing()
    checks = []
    for key in keys:
        rhs = gpk.w * (gpk.g2 ** (key.exponent_sum % order))
        checks.append(([(key.a, rhs)], base))
    results = [False] * len(keys)

    def resolve(indices: Sequence[int]) -> None:
        if group.batch_pairing_check([checks[i] for i in indices], rng):
            for i in indices:
                results[i] = True
            return
        if len(indices) == 1:
            return  # exact single check failed: key is bad
        mid = len(indices) // 2
        resolve(indices[:mid])
        resolve(indices[mid:])

    resolve(list(range(len(keys))))
    return results


def signature_matches_token(gpk: GroupPublicKey, message: bytes,
                            signature: GroupSignature,
                            token: RevocationToken,
                            period: Optional[bytes] = None) -> bool:
    """Public wrapper over Eq.3 for one token (used by audits)."""
    u_hat, v_hat, _u, _v = derive_generators(gpk, message, signature.r,
                                             period)
    return _token_encoded(gpk.group, signature, token, u_hat, v_hat)


def open_signature(gpk: GroupPublicKey, message: bytes,
                   signature: GroupSignature,
                   grt: Iterable[Tuple[RevocationToken, object]],
                   period: Optional[bytes] = None):
    """NO's audit: scan ``grt`` for the token encoded in the signature.

    ``grt`` yields ``(token, attachment)`` pairs; returns the attachment
    of the first matching token (the paper attaches ``grp_i`` / the user
    group id), or ``None`` when no token matches (signer unknown to NO,
    which for a verifying signature cannot happen).
    """
    u_hat, v_hat, _u, _v = derive_generators(gpk, message, signature.r,
                                             period)
    for token, attachment in grt:
        if _token_encoded(gpk.group, signature, token, u_hat, v_hat):
            return attachment
    return None


# ---------------------------------------------------------------------------
# Constant-time-per-signature revocation (Section V.C fast variant)
# ---------------------------------------------------------------------------


def revocation_tag(gpk: GroupPublicKey, message: bytes,
                   signature: GroupSignature,
                   period: Optional[bytes] = None) -> bytes:
    """Return the period tag ``e(T2, u_hat) / e(T1, v_hat) = e(A, u_hat)``.

    With per-period generators this value is constant for a given signer
    within a period, enabling the precomputed-table revocation check
    below (2 pairings, |URL|-independent).  It equals ``e(A, u_hat)``
    because ``e(v^alpha, u_hat) = e(u^alpha, v_hat)`` in this setting.
    """
    group = gpk.group
    u_hat, v_hat, _u, _v = derive_generators(gpk, message, signature.r,
                                             period)
    tag = group.pair(signature.t2, u_hat) / group.pair(signature.t1, v_hat)
    return tag.encode()


class PeriodRevocationTable:
    """Precomputed ``{e(A, u_hat_period)}`` set for O(1) revocation checks.

    Build once per (URL, period); then :meth:`is_revoked` costs two
    pairings regardless of the URL size.  The privacy cost: all
    signatures by one signer in the period share their tag, so the
    verifier can link them (Section V.C acknowledges this trade).
    """

    def __init__(self, gpk: GroupPublicKey,
                 url: Sequence[RevocationToken], period: bytes,
                 use_engine: bool = True) -> None:
        group = gpk.group
        self.period = period
        self.gpk = gpk
        # Period generators are derived ONCE here and reused for every
        # check -- that amortization is what makes the paper's "6 exp +
        # 5 pairings" total hold per verified signature.  The engine
        # adds its per-period line tables on top, so building a tag and
        # checking a signature skip the Miller-loop point arithmetic;
        # each tag still notes the one "pairing" the abstract table
        # construction spends per token.
        if use_engine:
            context = gpk.engine.generators(b"", 0, period)
        else:
            u_hat, v_hat, u, v = derive_generators(gpk, b"", 0, period)
            context = GeneratorContext(u_hat, v_hat, u, v)
        self._u_hat, self._v_hat = context.u_hat, context.v_hat
        self._u_table = context.u_table
        self._v_table = context.v_table
        if self._u_table is not None:
            tags = set()
            for token in url:
                instrument.note("pairing")
                tags.add(self._encode_gt(self._u_table.pairing(token.a.point)))
            self._tags = tags
        else:
            self._tags = {group.pair(token.a, self._u_hat).encode()
                          for token in url}

    def _encode_gt(self, value: Fp2) -> bytes:
        return GTElement(value, self.gpk.group).encode()

    def is_revoked(self, message: bytes, signature: GroupSignature) -> bool:
        """Two pairings + set lookup, independent of |URL|."""
        group = self.gpk.group
        if self._u_table is not None and self._v_table is not None:
            instrument.note("pairing", 2)
            tag_value = (self._u_table.pairing(signature.t2.point)
                         * self._v_table.pairing(signature.t1.point).inverse())
            return self._encode_gt(tag_value) in self._tags
        tag = (group.pair(signature.t2, self._u_hat)
               / group.pair(signature.t1, self._v_hat))
        return tag.encode() in self._tags


def random_group_id(group: PairingGroup,
                    rng: Optional[random.Random] = None) -> int:
    """Sample ``grp_i <- Z_r*`` (setup step 2)."""
    rng = rng or random.SystemRandom()
    return group.random_scalar(rng)


def blind_share(a: G1Element, x: int) -> bytes:
    """The TTP share ``A_{i,j} XOR x_j`` (setup step 7).

    ``x_j`` may be longer than the point encoding; per the paper's
    footnote 1, surplus bits of ``x_j`` are simply ignored.
    """
    encoded = a.encode()
    x_bytes = x.to_bytes((x.bit_length() + 7) // 8 or 1, "big")
    x_bytes = x_bytes.rjust(len(encoded), b"\x00")[-len(encoded):]
    return bytes(p ^ q for p, q in zip(encoded, x_bytes))


def unblind_share(group: PairingGroup, share: bytes, x: int) -> G1Element:
    """Recover ``A_{i,j}`` from the TTP share and the GM-provided ``x_j``."""
    x_bytes = x.to_bytes((x.bit_length() + 7) // 8 or 1, "big")
    x_bytes = x_bytes.rjust(len(share), b"\x00")[-len(share):]
    encoded = bytes(p ^ q for p, q in zip(share, x_bytes))
    return group.decode_g1(encoded)

"""DoS defense policy: client puzzles under suspected attack (V.A).

The paper adopts the Juels-Brainard approach: normally the router
processes (M.2) directly; when a connection-depletion attack is
suspected it attaches a puzzle to (M.1) and only spends pairing
operations on requests carrying a valid solution.

:class:`DosPolicy` encapsulates both the *detection* heuristic (request
rate over a sliding window) and the *response* (puzzle difficulty,
optionally scaled with attack intensity).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.crypto.puzzles import Puzzle


class DosPolicy:
    """Sliding-window request-rate detector with puzzle issuance."""

    def __init__(self, rate_threshold: float = 10.0,
                 window: float = 10.0,
                 base_difficulty: int = 8,
                 max_difficulty: int = 20,
                 adaptive: bool = True) -> None:
        """
        Args:
            rate_threshold: requests/second above which the router
                considers itself under attack.
            window: sliding-window length in seconds.
            base_difficulty: puzzle difficulty (bits) when the attack is
                at the threshold.
            max_difficulty: difficulty cap for adaptive scaling.
            adaptive: scale difficulty with the overload factor (one
                extra bit per doubling of the request rate).
        """
        self.rate_threshold = rate_threshold
        self.window = window
        self.base_difficulty = base_difficulty
        self.max_difficulty = max_difficulty
        self.adaptive = adaptive
        self.forced: Optional[bool] = None   # manual override for tests
        self._arrivals: Deque[float] = deque()

    def note_request(self, now: float) -> None:
        """Record a request arrival (called for every M.2, valid or not)."""
        self._arrivals.append(now)
        self._trim(now)

    def _trim(self, now: float) -> None:
        while self._arrivals and now - self._arrivals[0] > self.window:
            self._arrivals.popleft()

    def observed_rate(self, now: float) -> float:
        """Requests per second over the sliding window."""
        self._trim(now)
        return len(self._arrivals) / self.window

    def under_attack(self, now: float) -> bool:
        """Attack verdict (the manual override wins when set)."""
        if self.forced is not None:
            return self.forced
        return self.observed_rate(now) >= self.rate_threshold

    def current_difficulty(self, now: float) -> int:
        """Puzzle difficulty for the present load."""
        if not self.under_attack(now):
            return 0
        if not self.adaptive:
            return self.base_difficulty
        rate = max(self.observed_rate(now), self.rate_threshold)
        extra = 0
        factor = rate / self.rate_threshold
        while factor >= 2 and self.base_difficulty + extra < self.max_difficulty:
            factor /= 2
            extra += 1
        return min(self.base_difficulty + extra, self.max_difficulty)

    def fresh_puzzle(self, now: Optional[float] = None) -> Puzzle:
        """Issue a puzzle at the current difficulty."""
        difficulty = (self.base_difficulty if now is None
                      else self.current_difficulty(now))
        return Puzzle.fresh(difficulty or self.base_difficulty)

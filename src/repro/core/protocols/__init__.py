"""Authentication and key-agreement protocol engines.

Pure protocol state machines, independent of both the entity layer and
the simulator: a :class:`~repro.core.protocols.user_router.RouterAuthEngine`
/ :class:`~repro.core.protocols.user_router.UserAuthEngine` pair runs the
three-way user-router handshake (M.1-M.3), and
:class:`~repro.core.protocols.user_user.PeerAuthEngine` the user-user
handshake (M~.1-M~.3).  Entities (:mod:`repro.core.router`,
:mod:`repro.core.user`) and simulator nodes both drive these engines.
"""

from repro.core.protocols.session import SecureSession, session_id_from
from repro.core.protocols.user_router import (
    PendingUserSession,
    RouterAuthEngine,
    UserAuthEngine,
)
from repro.core.protocols.user_user import PeerAuthEngine, PendingPeerSession
from repro.core.protocols.dos import DosPolicy

__all__ = [
    "DosPolicy",
    "PeerAuthEngine",
    "PendingPeerSession",
    "PendingUserSession",
    "RouterAuthEngine",
    "SecureSession",
    "UserAuthEngine",
    "session_id_from",
]

"""The user-router mutual authentication and key agreement (Section IV.B).

Three messages:

1. Router broadcasts a signed :class:`~repro.core.messages.Beacon`
   carrying a fresh DH base ``g``, its share ``g^r_R``, its certificate,
   and the current CRL / URL (M.1).
2. The user validates all of it, group-signs ``{g^r_j, g^r_R, ts2}``
   anonymously, and unicasts the :class:`AccessRequest` (M.2).
3. The router checks freshness, verifies the group signature against
   gpk and the URL (Eq.2 / Eq.3), computes ``K = (g^r_j)^r_R``, and
   answers with the sealed :class:`AccessConfirm` (M.3).

Mutual explicit authentication: the user authenticated the router via
its NO-certified ECDSA signature; the router authenticated the user as
*some unrevoked group member* via the group signature; both confirmed
key possession through M.3.

Loss tolerance (metropolitan radio is lossy): the user side may drive
(M.2) through a :class:`Retransmitter` -- per-message timeout with
capped exponential backoff plus jitter and a bounded retry budget --
resending the *identical* wire bytes, no message-format change.  The
router side makes retransmits idempotent by keying completed
handshakes on the pair of fresh DH shares ``(g^r_R, g^r_j)`` (the
protocol's existing freshness nonces): a duplicate (M.2) is answered
with the cached (M.3) without re-verifying, without a second session,
and without a second audit-log entry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.verifier_pool import VerifierPool

from repro import obs
from repro.core import groupsig
from repro.core.certs import CertificateRevocationList, UserRevocationList
from repro.core.clock import Clock, SystemClock
from repro.core.groupsig import GroupPrivateKey, GroupPublicKey
from repro.core.messages import AccessConfirm, AccessRequest, Beacon
from repro.core.protocols.dos import DosPolicy
from repro.core.protocols.session import SecureSession, session_id_from
from repro.core.wire import Writer, quantize_ts
from repro.crypto import puzzles
from repro.errors import (
    AuthenticationError,
    CertificateError,
    ProtocolError,
    PuzzleError,
    ReplayError,
)
from repro.pairing.group import G1Element, PairingGroup
from repro.sig.ecdsa import EcdsaKeyPair, EcdsaPublicKey

#: Default acceptance window for timestamp freshness, seconds.
DEFAULT_TS_WINDOW = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for handshake retransmissions.

    Attempt ``n`` (0-based) waits ``initial_timeout * backoff_factor**n``
    seconds, capped at ``max_timeout``, multiplied by a uniform jitter
    in ``[1-jitter, 1+jitter]`` (desynchronizes a cell full of users
    retrying after the same collision).  The defaults keep the whole
    retry span inside the protocol's freshness window: a retransmit
    that would arrive with a stale ``ts2`` is pointless, the user
    should restart from a fresh beacon instead.
    """

    initial_timeout: float = 2.0
    backoff_factor: float = 2.0
    max_timeout: float = 8.0
    max_retries: int = 3
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.initial_timeout <= 0 or self.max_timeout <= 0:
            raise ProtocolError("retry timeouts must be positive")
        if self.backoff_factor < 1.0:
            raise ProtocolError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ProtocolError("max_retries must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ProtocolError("jitter must be in [0, 1)")

    def timeout_for(self, attempt: int,
                    rng: Optional[random.Random] = None) -> float:
        """Backoff delay before retry ``attempt`` (0-based)."""
        base = min(self.initial_timeout * self.backoff_factor ** attempt,
                   self.max_timeout)
        if rng is not None and self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


class Retransmitter:
    """Per-message retransmission state machine (the user's M.2).

    Transport-agnostic: ``send`` emits the frame, ``schedule(delay,
    callback)`` arms a timer (the simulator passes
    :meth:`~repro.wmn.simclock.EventLoop.schedule`).  The same wire
    bytes are resent each time; receiver idempotence comes from the
    router's duplicate suppression on the handshake's fresh DH shares.
    ``ack()`` on (M.3) receipt stops the timers; after ``max_retries``
    unacknowledged resends ``on_give_up`` fires once and the machine
    goes inert.  Retries are counted in ``retries`` and the ambient
    ``handshake.retries`` observability counter.
    """

    def __init__(self, send: Callable[[], None],
                 schedule: Callable[[float, Callable[[], None]], None],
                 policy: RetryPolicy,
                 rng: Optional[random.Random] = None,
                 on_retry: Optional[Callable[[], None]] = None,
                 on_give_up: Optional[Callable[[], None]] = None) -> None:
        self._send = send
        self._schedule = schedule
        self.policy = policy
        self.rng = rng
        self.on_retry = on_retry
        self.on_give_up = on_give_up
        self.retries = 0
        self.acked = False
        self.cancelled = False
        self._epoch = 0          # invalidates stale timers

    @property
    def alive(self) -> bool:
        return not (self.acked or self.cancelled)

    def start(self) -> None:
        """First transmission + first timer."""
        if not self.alive:
            return
        self._send()
        self._arm()

    def ack(self) -> None:
        """The peer answered; all outstanding timers become no-ops."""
        self.acked = True

    def cancel(self) -> None:
        """Abandon the handshake attempt (no ``on_give_up`` firing)."""
        self.cancelled = True

    def _arm(self) -> None:
        self._epoch += 1
        epoch = self._epoch
        timeout = self.policy.timeout_for(self.retries, self.rng)
        self._schedule(timeout, lambda: self._fire(epoch))

    def _fire(self, epoch: int) -> None:
        if not self.alive or epoch != self._epoch:
            return
        if self.retries >= self.policy.max_retries:
            self.cancelled = True
            if self.on_give_up is not None:
                self.on_give_up()
            return
        self.retries += 1
        obs.counter("handshake.retries")
        if self.on_retry is not None:
            self.on_retry()
        self._send()
        self._arm()


@dataclass
class AuthLogEntry:
    """What the router logs per authentication, enabling later audit.

    Contains exactly the material the paper's audit protocol consults:
    the (M.2) authentication message (signed payload + group signature)
    keyed by the session identifier.
    """

    router_id: str
    session_id: bytes
    signed_payload: bytes
    group_signature: groupsig.GroupSignature
    timestamp: float


@dataclass
class PendingUserSession:
    """User-side handshake state between sending M.2 and receiving M.3."""

    router_id: str
    r_user: int
    g_r_user: G1Element
    g_r_router: G1Element
    session: SecureSession


class RouterAuthEngine:
    """Router-side protocol driver: beacons in, sessions out."""

    def __init__(self, router_id: str, keypair: EcdsaKeyPair,
                 certificate, gpk: GroupPublicKey,
                 crl_provider: Callable[[], CertificateRevocationList],
                 url_provider: Callable[[], UserRevocationList],
                 clock: Optional[Clock] = None,
                 rng: Optional[random.Random] = None,
                 ts_window: float = DEFAULT_TS_WINDOW,
                 dos_policy: Optional[DosPolicy] = None,
                 beacon_validity: float = 300.0) -> None:
        self.router_id = router_id
        self.keypair = keypair
        self.certificate = certificate
        self.gpk = gpk
        self.group: PairingGroup = gpk.group
        self.crl_provider = crl_provider
        self.url_provider = url_provider
        self.clock = clock or SystemClock()
        self.rng = rng or random.SystemRandom()
        self.ts_window = ts_window
        self.dos_policy = dos_policy
        self.beacon_validity = beacon_validity
        # outstanding beacons: g^r_R encoding -> (r_R, g, issued_at, puzzle)
        self._outstanding: Dict[bytes, Tuple[int, G1Element, float,
                                             Optional[puzzles.Puzzle]]] = {}
        self.sessions: Dict[bytes, SecureSession] = {}
        self.log: list = []          # AuthLogEntry per successful auth
        # completed handshakes keyed on the fresh DH-share pair, for
        # idempotent answers to retransmitted (M.2)s:
        # (g^r_R enc, g^r_j enc) -> (confirm, session, accepted_at)
        self._completed: Dict[Tuple[bytes, bytes],
                              Tuple[AccessConfirm, SecureSession,
                                    float]] = {}
        self.stats = {"beacons": 0, "requests": 0, "accepted": 0,
                      "duplicate_requests": 0,
                      "rejected_replay": 0, "rejected_signature": 0,
                      "rejected_revoked": 0, "rejected_puzzle": 0}
        #: Period label for period-mode (Section V.C) generators; None
        #: keeps the default per-signature mode.  Set (together with the
        #: user side's matching ``auth_period``) by
        #: :meth:`MeshRouter.enable_sharded_revocation` -- the challenge
        #: binds the generators, so both sides must agree on the label.
        self.auth_period: Optional[bytes] = None
        #: Sharded fast-revocation state
        #: (:class:`repro.core.revocation.RevocationState`); when set,
        #: verification runs the SPK check as usual and replaces the
        #: linear Eq.3 scan with the O(1) shard check.
        self.revocation_state = None

    def _bump(self, key: str) -> None:
        """Increment one protocol stat, mirrored into the obs registry.

        The local ``stats`` dict keeps its exact historical behaviour
        (tests and benchmarks read it); the ambient registry gets the
        same event as ``router.<key>_total`` so a deployment-wide
        report can aggregate across routers.
        """
        self.stats[key] += 1
        obs.counter(f"router.{key}_total")

    # -- M.1 ----------------------------------------------------------------

    def make_beacon(self) -> Beacon:
        """Build and sign a fresh beacon (M.1); remembers r_R for later.

        ``ts1`` is quantized to wire precision at creation so the
        broadcast object, its signed payload, and any decoded copy all
        carry the identical timestamp (see :func:`repro.core.wire.quantize_ts`).
        """
        now = quantize_ts(self.clock.now())
        self._expire_outstanding(now)
        r_router = self.group.random_scalar(self.rng)
        g = self.group.random_g1(self.rng)
        g_r_router = g ** r_router
        puzzle = None
        if self.dos_policy is not None and self.dos_policy.under_attack(now):
            puzzle = self.dos_policy.fresh_puzzle()
        beacon = Beacon(
            router_id=self.router_id, g=g, g_r_router=g_r_router, ts1=now,
            signature=b"", certificate=self.certificate,
            crl=self.crl_provider(), url=self.url_provider(), puzzle=puzzle)
        signature = self.keypair.sign(beacon.signed_payload())
        beacon = Beacon(beacon.router_id, beacon.g, beacon.g_r_router,
                        beacon.ts1, signature, beacon.certificate,
                        beacon.crl, beacon.url, beacon.puzzle)
        self._outstanding[g_r_router.encode()] = (r_router, g, now, puzzle)
        self._bump("beacons")
        return beacon

    def _expire_outstanding(self, now: float) -> None:
        stale = [key for key, (_r, _g, issued, _p) in self._outstanding.items()
                 if now - issued > self.beacon_validity]
        for key in stale:
            del self._outstanding[key]
        done = [key for key, (_c, _s, accepted) in self._completed.items()
                if now - accepted > self.beacon_validity]
        for key in done:
            del self._completed[key]

    def expire(self, now: Optional[float] = None) -> None:
        """Explicit expiry tick: prune outstanding beacons and the
        completed-handshake cache.

        Beacon creation already prunes as a side effect; a scenario loop
        (or an operator cron) calls this directly so a router that stops
        beaconing -- burst of traffic, then silence -- still releases
        the ``r_R`` secrets and cached confirms for stale handshakes
        instead of holding them until the next beacon.
        """
        self._expire_outstanding(self.clock.now() if now is None else now)

    # -- M.2 -> M.3 -----------------------------------------------------------

    def _duplicate(self, request: AccessRequest, now: float
                   ) -> Optional[Tuple[AccessConfirm, SecureSession]]:
        """Cached outcome for a retransmitted (M.2), if any.

        The cache key is the pair of DH shares -- both fresh per
        handshake -- so only a byte-identical retransmit of an already
        accepted request matches, and only within ``ts_window`` of the
        original acceptance: a prompt re-send is a *duplicate* (served
        idempotently), a late one is a *replay* and falls through to
        the freshness checks, which reject it exactly as before.  Hits
        re-serve the original (M.3) without re-verifying and without a
        second session or log entry; they count as
        ``duplicate_requests``, not fresh traffic.
        """
        cached = self._completed.get(
            (request.g_r_router.encode(), request.g_r_user.encode()))
        if cached is None:
            return None
        confirm, session, accepted = cached
        if now - accepted > self.ts_window:
            return None
        self._bump("duplicate_requests")
        return confirm, session

    def _precheck(self, request: AccessRequest, now: float) -> int:
        """Every pre-pairing check of (M.2); returns the beacon's r_R.

        Raises (and tallies) the cheap rejections -- replay, timestamp,
        puzzle, degenerate DH share -- so the expensive group-signature
        verification only ever runs on structurally plausible requests.
        """
        record = self._outstanding.get(request.g_r_router.encode())
        if record is None:
            self._bump("rejected_replay")
            raise ReplayError("unknown or expired g^r_R echo")
        r_router, _g, _issued, puzzle = record
        if abs(now - request.ts2) > self.ts_window:
            self._bump("rejected_replay")
            raise ReplayError("ts2 outside the acceptance window")

        # DoS defense: while under suspected attack the router requires
        # a solution with EVERY (M.2); a request answering a pre-attack
        # puzzle-free beacon is rejected cheaply rather than verified.
        if (puzzle is None and self.dos_policy is not None
                and self.dos_policy.under_attack(now)):
            self._bump("rejected_puzzle")
            raise PuzzleError(
                "puzzle required while under attack; re-request a beacon")
        # Verify the puzzle BEFORE any pairing operation.
        if puzzle is not None:
            if request.puzzle_solution is None or not puzzles.verify_solution(
                    puzzle, request.puzzle_binding(),
                    request.puzzle_solution):
                self._bump("rejected_puzzle")
                raise PuzzleError("missing or wrong puzzle solution")

        if (request.g_r_user.is_identity()
                or not self.group.curve.in_subgroup(
                    request.g_r_user.point)):
            self._bump("rejected_signature")
            raise AuthenticationError(
                "g^r_j degenerate or outside the subgroup")
        return r_router

    def _accept(self, request: AccessRequest, r_router: int, now: float
                ) -> Tuple[AccessConfirm, SecureSession]:
        """Post-verification tail of (M.2): key, session, (M.3), log."""
        shared = request.g_r_user ** r_router      # K = (g^r_j)^r_R
        session_id = session_id_from(request.g_r_router, request.g_r_user)
        session = SecureSession(session_id, shared, initiator=False,
                                peer_label="anonymous-user")
        confirm_payload = (Writer().string(self.router_id)
                           .var(request.g_r_user.encode())
                           .var(request.g_r_router.encode())
                           .done())
        confirm = AccessConfirm(
            g_r_user=request.g_r_user, g_r_router=request.g_r_router,
            sealed=session.seal_handshake(confirm_payload))
        self.sessions[session_id] = session
        self.log.append(AuthLogEntry(
            router_id=self.router_id, session_id=session_id,
            signed_payload=request.signed_payload(),
            group_signature=request.group_signature, timestamp=now))
        self._completed[(request.g_r_router.encode(),
                         request.g_r_user.encode())] = (confirm, session, now)
        self._bump("accepted")
        return confirm, session

    def process_request(self, request: AccessRequest
                        ) -> Tuple[AccessConfirm, SecureSession]:
        """Validate (M.2); on success return (M.3) and the new session.

        Raises the specific :mod:`repro.errors` subclass describing the
        rejection -- the attack benchmarks classify failures by type.
        """
        now = self.clock.now()
        self._bump("requests")
        duplicate = self._duplicate(request, now)
        if duplicate is not None:
            return duplicate
        reg = obs.active()
        start = reg.clock() if reg is not None else 0.0
        with obs.timer("router.precheck_seconds"), \
                obs.span("router.precheck"):
            r_router = self._precheck(request, now)

        url = self.url_provider()
        state = self.revocation_state
        try:
            # groupsig.verify opens its own "groupsig.verify" span (with
            # spk/scan children), so the stage needs no extra span here.
            with obs.timer("router.verify_seconds"):
                if state is not None:
                    # Sharded path: SPK correctness first (same order as
                    # the serial scan -- a forged signature is rejected
                    # as invalid, never as revoked), then the O(1)
                    # shard check instead of the linear Eq.3 scan.
                    payload = request.signed_payload()
                    groupsig.verify(self.gpk, payload,
                                    request.group_signature,
                                    period=self.auth_period,
                                    check_revocation=False)
                    state.check(payload, request.group_signature)
                else:
                    groupsig.verify(self.gpk, request.signed_payload(),
                                    request.group_signature,
                                    url=url.tokens,
                                    period=self.auth_period)
        except groupsig.RevokedKeyError:
            self._bump("rejected_revoked")
            raise
        except groupsig.InvalidSignature:
            self._bump("rejected_signature")
            raise

        with obs.timer("router.accept_seconds"), obs.span("router.accept"):
            outcome = self._accept(request, r_router, now)
        if reg is not None:
            reg.observe("router.handshake_seconds", reg.clock() - start)
        return outcome

    def process_requests(self, requests: "list[AccessRequest]",
                         pool: "Optional[VerifierPool]" = None,
                         traces: "Optional[list]" = None
                         ) -> "list[object]":
        """Batch counterpart of :meth:`process_request` (M.2 fan-in).

        A busy gateway router accumulates the (M.2) messages that
        arrive within one scheduling quantum and authenticates them
        together: prechecks run per request, then every surviving
        signature goes through :func:`groupsig.verify_batch`, which
        shares the gpk engine's precomputation tables across the whole
        batch.  Returns one outcome per input, in order: an
        ``(AccessConfirm, SecureSession)`` pair on acceptance or the
        exception instance the sequential path would have raised.
        Stats and the auth log are updated exactly as if each request
        had been processed individually.

        ``pool`` opts in to multi-core verification through a
        :class:`~repro.core.verifier_pool.VerifierPool`.  The pool is
        consulted only when its worker-side snapshot still matches this
        router's gpk and *current* URL (the URL rotates every update
        period); otherwise the batch silently takes the serial path.
        Either way the outcomes and instrumented operation counts are
        identical -- the pool buys wall-clock time only.

        ``traces`` optionally carries one
        :class:`~repro.obs.spans.TraceContext` (or ``None``) per
        request; on the pool path each item's worker-side verification
        span is parented under its context, stitching the per-item
        crypto cost into the submitting handshake's trace.
        """
        now = self.clock.now()
        reg = obs.active()
        start = reg.clock() if reg is not None else 0.0
        outcomes: "list[object]" = [None] * len(requests)
        r_routers: Dict[int, int] = {}
        batch = []
        positions = []
        for index, request in enumerate(requests):
            self._bump("requests")
            duplicate = self._duplicate(request, now)
            if duplicate is not None:
                outcomes[index] = duplicate
                continue
            try:
                r_routers[index] = self._precheck(request, now)
            except (ReplayError, PuzzleError, AuthenticationError) as exc:
                outcomes[index] = exc
                continue
            batch.append((request.signed_payload(),
                          request.group_signature))
            positions.append(index)

        if batch:
            url = self.url_provider()
            state = self.revocation_state
            if state is not None:
                # Sharded path: batch-verify the SPKs, then run the
                # O(1) shard check per survivor.  The pool is skipped --
                # its workers snapshot the flat URL, and the whole point
                # here is not to scan it.
                errors = groupsig.verify_batch(self.gpk, batch,
                                               period=self.auth_period,
                                               check_revocation=False)
                for slot, (payload, sig) in enumerate(batch):
                    if errors[slot] is None:
                        try:
                            state.check(payload, sig)
                        except groupsig.RevokedKeyError as exc:
                            errors[slot] = exc
            elif pool is not None and pool.matches(self.gpk, url.tokens):
                batch_traces = None
                if traces is not None:
                    batch_traces = [traces[position]
                                    for position in positions]
                errors = pool.verify_batch(batch, traces=batch_traces)
            else:
                errors = groupsig.verify_batch(self.gpk, batch,
                                               url=url.tokens,
                                               period=self.auth_period)
            for position, error in zip(positions, errors):
                if error is None:
                    outcomes[position] = self._accept(
                        requests[position], r_routers[position], now)
                elif isinstance(error, groupsig.RevokedKeyError):
                    self._bump("rejected_revoked")
                    outcomes[position] = error
                else:
                    self._bump("rejected_signature")
                    outcomes[position] = error
        if reg is not None:
            reg.counter("router.batch_requests_total", len(requests))
            reg.observe("router.batch_seconds", reg.clock() - start)
        return outcomes


class UserAuthEngine:
    """User-side protocol driver."""

    def __init__(self, gpk: GroupPublicKey, operator_key: EcdsaPublicKey,
                 credential: GroupPrivateKey,
                 clock: Optional[Clock] = None,
                 rng: Optional[random.Random] = None,
                 ts_window: float = DEFAULT_TS_WINDOW,
                 max_puzzle_difficulty: int = 24) -> None:
        self.gpk = gpk
        self.group: PairingGroup = gpk.group
        self.operator_key = operator_key
        self.credential = credential
        self.clock = clock or SystemClock()
        self.rng = rng or random.SystemRandom()
        self.ts_window = ts_window
        self.max_puzzle_difficulty = max_puzzle_difficulty
        #: Period label for period-mode signing; must equal the
        #: router's ``auth_period`` (the Fiat-Shamir challenge binds
        #: the period-derived generators).  ``None`` = default mode.
        self.auth_period: Optional[bytes] = None

    # -- validate M.1, produce M.2 -------------------------------------------

    def process_beacon(self, beacon: Beacon
                       ) -> Tuple[AccessRequest, PendingUserSession]:
        """Step 2 of Section IV.B: full beacon validation, then M.2."""
        now = self.clock.now()
        reg = obs.active()
        start = reg.clock() if reg is not None else 0.0
        with obs.span("user.beacon_validate"):
            if abs(now - beacon.ts1) > self.ts_window:
                raise ReplayError("beacon ts1 outside the acceptance window")
            beacon.certificate.validate(self.operator_key, now)
            if beacon.certificate.router_id != beacon.router_id:
                raise CertificateError(
                    "certificate/beacon router id mismatch")
            beacon.crl.validate(self.operator_key, now)
            if beacon.crl.is_revoked(beacon.router_id):
                raise CertificateError(
                    f"router {beacon.router_id} is on the CRL")
            beacon.url.validate(self.operator_key, now)
            if not beacon.certificate.public_key.verify(
                    beacon.signed_payload(), beacon.signature):
                raise AuthenticationError("beacon signature invalid")
            if beacon.g.is_identity() or beacon.g_r_router.is_identity():
                raise ProtocolError("degenerate DH values in beacon")
            curve = self.group.curve
            if not (curve.in_subgroup(beacon.g.point)
                    and curve.in_subgroup(beacon.g_r_router.point)):
                raise ProtocolError("beacon DH values outside the subgroup")
        if reg is not None:
            reg.observe("user.beacon_validate_seconds", reg.clock() - start)

        r_user = self.group.random_scalar(self.rng)
        g_r_user = beacon.g ** r_user
        ts2 = quantize_ts(now)   # match what the wire will carry
        request = AccessRequest(g_r_user=g_r_user,
                                g_r_router=beacon.g_r_router, ts2=ts2,
                                group_signature=None)  # placeholder
        signature = groupsig.sign(self.gpk, self.credential,
                                  request.signed_payload(), rng=self.rng,
                                  period=self.auth_period)
        solution = None
        if beacon.puzzle is not None:
            if beacon.puzzle.difficulty_bits > self.max_puzzle_difficulty:
                raise PuzzleError("puzzle difficulty beyond client policy")
            solution = puzzles.solve_puzzle(beacon.puzzle,
                                            request.puzzle_binding())
        request = AccessRequest(g_r_user, beacon.g_r_router, ts2,
                                signature, solution)

        shared = beacon.g_r_router ** r_user       # K = (g^r_R)^r_j
        session_id = session_id_from(beacon.g_r_router, g_r_user)
        session = SecureSession(session_id, shared, initiator=True,
                                peer_label=beacon.router_id)
        pending = PendingUserSession(
            router_id=beacon.router_id, r_user=r_user, g_r_user=g_r_user,
            g_r_router=beacon.g_r_router, session=session)
        if reg is not None:
            reg.counter("user.requests_built_total")
            reg.observe("user.process_beacon_seconds", reg.clock() - start)
        return request, pending

    # -- validate M.3 ------------------------------------------------------

    def complete(self, pending: PendingUserSession,
                 confirm: AccessConfirm) -> SecureSession:
        """Step 3.4 receipt: open E_K(MR_k, g^r_j, g^r_R), check contents."""
        with obs.timer("user.complete_seconds"), obs.span("user.complete"):
            if (confirm.g_r_user != pending.g_r_user
                    or confirm.g_r_router != pending.g_r_router):
                raise ProtocolError("confirm echoes the wrong DH values")
            payload = pending.session.open_handshake(confirm.sealed)
            expected = (Writer().string(pending.router_id)
                        .var(pending.g_r_user.encode())
                        .var(pending.g_r_router.encode())
                        .done())
            if payload != expected:
                raise AuthenticationError("confirm payload mismatch")
        obs.counter("user.handshakes_completed_total")
        return pending.session

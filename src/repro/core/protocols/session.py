"""Established data sessions (the hybrid MAC phase of Section V.C).

A successful handshake yields a :class:`SecureSession` on each side,
identified by the pair of fresh DH public values per the paper ("this
session is uniquely identified through (g^r_R, g^r_j)").  All subsequent
traffic uses AEAD-protected :class:`~repro.core.messages.DataPacket`s
with strictly increasing sequence numbers -- replays and reorders are
rejected without any public-key operation.

Long-lived sessions may ratchet their keys forward with :meth:`rekey`:
both sides derive the next AEAD key from the current one plus the
session transcript position, giving cheap forward secrecy within a
session (compromising the current key does not expose packets sealed
under earlier generations).
"""

from __future__ import annotations

import hashlib

from repro.core.messages import DataPacket
from repro.crypto.aead import AeadKey
from repro.crypto.kdf import derive_session_keys, hkdf
from repro.errors import SessionError
from repro.pairing.group import G1Element


def session_id_from(g_r_initiator: G1Element,
                    g_r_responder: G1Element) -> bytes:
    """Derive the 16-byte session identifier from the fresh DH values."""
    h = hashlib.sha256()
    h.update(b"repro/peace/session-id")
    h.update(g_r_initiator.encode())
    h.update(g_r_responder.encode())
    return h.digest()[:16]


class SecureSession:
    """One side of an authenticated, encrypted data session."""

    def __init__(self, session_id: bytes, shared_element: G1Element,
                 initiator: bool, peer_label: str = "") -> None:
        self.session_id = session_id
        self.initiator = initiator
        self.peer_label = peer_label
        keys = derive_session_keys(shared_element.encode(), session_id)
        self._chain_key = keys["aead"]
        self._aead = AeadKey(self._chain_key)
        self._send_seq = 0
        self._recv_seq = -1
        self.bytes_sent = 0
        self.bytes_received = 0
        self.key_generation = 0

    # Both directions share one AEAD key but disjoint sequence spaces:
    # the initiator sends even sequence numbers, the responder odd ones.

    def _next_send_seq(self) -> int:
        seq = self._send_seq * 2 + (0 if self.initiator else 1)
        self._send_seq += 1
        return seq

    def send(self, payload: bytes) -> DataPacket:
        """Seal ``payload`` into the next data packet."""
        sequence = self._next_send_seq()
        packet = DataPacket(self.session_id, sequence, b"")
        sealed = self._aead.seal(payload, aad=packet.aad())
        packet = DataPacket(self.session_id, sequence, sealed)
        self.bytes_sent += len(packet.encode())
        return packet

    def rekey(self) -> int:
        """Ratchet the session key forward; returns the new generation.

        Both sides must call this at the same transcript point (the
        PEACE convention: the initiator requests it in-band, then both
        ratchet).  Packets sealed under the previous generation no
        longer authenticate -- calling this out of step with the peer
        severs the session, which is the safe failure mode.
        """
        self.key_generation += 1
        self._chain_key = hkdf(
            self._chain_key, 32, salt=self.session_id,
            info=b"repro/peace/rekey-%d" % self.key_generation)
        self._aead = AeadKey(self._chain_key)
        return self.key_generation

    def export_key_material(self, label: bytes, length: int = 32) -> bytes:
        """Derive application keying material from this session.

        Both sides derive identical bytes for the same ``label`` (and
        key generation), without ever exposing the session's own keys
        -- the hook upper layers such as the onion overlay build on.
        """
        return hkdf(self._chain_key, length, salt=self.session_id,
                    info=b"repro/peace/export:" + label)

    def seal_handshake(self, payload: bytes) -> bytes:
        """Seal the key-confirmation blob of (M.3) / (M~.3)."""
        return self._aead.seal(payload, aad=b"handshake" + self.session_id)

    def open_handshake(self, sealed: bytes) -> bytes:
        """Open the peer's key-confirmation blob; raises on forgery."""
        return self._aead.open(sealed, aad=b"handshake" + self.session_id)

    def receive(self, packet: DataPacket) -> bytes:
        """Authenticate and open a packet from the peer.

        Raises :class:`SessionError` on wrong session, replayed or
        reordered sequence numbers, wrong direction, or MAC failure.
        """
        if packet.session_id != self.session_id:
            raise SessionError("packet for a different session")
        expected_parity = 1 if self.initiator else 0
        if packet.sequence % 2 != expected_parity:
            raise SessionError("packet from the wrong direction")
        if packet.sequence <= self._recv_seq:
            raise SessionError("replayed or reordered packet")
        payload = self._aead.open(packet.sealed, aad=packet.aad())
        self._recv_seq = packet.sequence
        self.bytes_received += len(packet.encode())
        return payload

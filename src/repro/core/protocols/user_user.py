"""The user-user mutual authentication and key agreement (Section IV.C).

Neighboring users authenticate each other bilaterally and anonymously
before relaying traffic.  Both sides group-sign; neither learns more
than "my peer is an unrevoked subscriber".  The DH base ``g`` comes from
the current service router's beacon; the URL for revocation checks does
too.

A single :class:`PeerAuthEngine` plays both roles: ``initiate`` starts a
handshake (M~.1), ``respond`` answers one (M~.2), ``complete`` finishes
the initiator side (M~.3), ``finalize`` checks M~.3 at the responder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core import groupsig
from repro.core.certs import UserRevocationList
from repro.core.clock import Clock, SystemClock
from repro.core.groupsig import GroupPrivateKey, GroupPublicKey
from repro.core.messages import PeerConfirm, PeerHello, PeerResponse
from repro.core.protocols.session import SecureSession, session_id_from
from repro.core.wire import Writer, quantize_ts
from repro.errors import AuthenticationError, ProtocolError, ReplayError
from repro.pairing.group import G1Element, PairingGroup


@dataclass
class PendingPeerSession:
    """Handshake state kept by either side between messages."""

    role: str                 # "initiator" | "responder"
    r_local: int
    g_r_local: G1Element
    g_r_remote: Optional[G1Element]
    ts1: float
    ts2: Optional[float] = None
    session: Optional[SecureSession] = None


class PeerAuthEngine:
    """Drives the three-way user-user handshake for one user."""

    def __init__(self, gpk: GroupPublicKey, credential: GroupPrivateKey,
                 clock: Optional[Clock] = None,
                 rng: Optional[random.Random] = None,
                 ts_window: float = 30.0) -> None:
        self.gpk = gpk
        self.group: PairingGroup = gpk.group
        self.credential = credential
        self.clock = clock or SystemClock()
        self.rng = rng or random.SystemRandom()
        self.ts_window = ts_window

    # -- M~.1 -----------------------------------------------------------

    def initiate(self, g: G1Element
                 ) -> Tuple[PeerHello, PendingPeerSession]:
        """Build the local broadcast (M~.1) using the beacon's base g.

        ``ts1`` is quantized to the wire's millisecond precision *before*
        it enters the message or the pending state: the signed payload
        encodes the quantized value anyway, and the ``ts2 - ts1``
        window check in :meth:`complete` compares the stored ``ts1``
        against a wire-decoded ``ts2`` -- mixing raw and quantized
        floats there can flip the sign of a sub-millisecond difference.
        """
        now = quantize_ts(self.clock.now())
        r_local = self.group.random_scalar(self.rng)
        g_r_local = g ** r_local
        hello = PeerHello(g=g, g_r_initiator=g_r_local, ts1=now,
                          group_signature=None)
        signature = groupsig.sign(self.gpk, self.credential,
                                  hello.signed_payload(), rng=self.rng)
        hello = PeerHello(g, g_r_local, now, signature)
        pending = PendingPeerSession(role="initiator", r_local=r_local,
                                     g_r_local=g_r_local, g_r_remote=None,
                                     ts1=now)
        return hello, pending

    # -- M~.1 -> M~.2 ------------------------------------------------------

    def respond(self, hello: PeerHello, url: UserRevocationList
                ) -> Tuple[PeerResponse, PendingPeerSession]:
        """Validate a received (M~.1) and answer with (M~.2).

        ``ts2`` is wire-quantized at creation (see :meth:`initiate`) so
        the responder's pending state and the initiator's decoded copy
        agree exactly.
        """
        now = quantize_ts(self.clock.now())
        if abs(now - hello.ts1) > self.ts_window:
            raise ReplayError("peer hello ts1 outside acceptance window")
        if hello.g.is_identity() or hello.g_r_initiator.is_identity():
            raise ProtocolError("degenerate DH values in peer hello")
        curve = self.group.curve
        if not (curve.in_subgroup(hello.g.point)
                and curve.in_subgroup(hello.g_r_initiator.point)):
            raise ProtocolError("peer hello DH values outside the subgroup")
        groupsig.verify(self.gpk, hello.signed_payload(),
                        hello.group_signature, url=url.tokens)

        r_local = self.group.random_scalar(self.rng)
        g_r_local = hello.g ** r_local
        response = PeerResponse(g_r_initiator=hello.g_r_initiator,
                                g_r_responder=g_r_local, ts2=now,
                                group_signature=None)
        signature = groupsig.sign(self.gpk, self.credential,
                                  response.signed_payload(), rng=self.rng)
        response = PeerResponse(hello.g_r_initiator, g_r_local, now,
                                signature)

        shared = hello.g_r_initiator ** r_local
        session_id = session_id_from(hello.g_r_initiator, g_r_local)
        session = SecureSession(session_id, shared, initiator=False,
                                peer_label="anonymous-peer")
        pending = PendingPeerSession(role="responder", r_local=r_local,
                                     g_r_local=g_r_local,
                                     g_r_remote=hello.g_r_initiator,
                                     ts1=hello.ts1, ts2=now,
                                     session=session)
        return response, pending

    # -- M~.2 -> M~.3 ------------------------------------------------------

    def complete(self, pending: PendingPeerSession, response: PeerResponse,
                 url: UserRevocationList
                 ) -> Tuple[PeerConfirm, SecureSession]:
        """Initiator: validate (M~.2), emit (M~.3), session is live."""
        if pending.role != "initiator":
            raise ProtocolError("complete() is an initiator-side step")
        if response.g_r_initiator != pending.g_r_local:
            raise ProtocolError("response echoes a different g^r_j")
        if not (0 <= response.ts2 - pending.ts1 <= self.ts_window):
            raise ReplayError("ts2 - ts1 outside the acceptable window")
        if (response.g_r_responder.is_identity()
                or not self.group.curve.in_subgroup(
                    response.g_r_responder.point)):
            raise ProtocolError(
                "responder DH value degenerate or outside the subgroup")
        groupsig.verify(self.gpk, response.signed_payload(),
                        response.group_signature, url=url.tokens)

        shared = response.g_r_responder ** pending.r_local
        session_id = session_id_from(pending.g_r_local,
                                     response.g_r_responder)
        session = SecureSession(session_id, shared, initiator=True,
                                peer_label="anonymous-peer")
        payload = self._confirm_payload(pending.g_r_local,
                                        response.g_r_responder,
                                        pending.ts1, response.ts2)
        confirm = PeerConfirm(g_r_initiator=pending.g_r_local,
                              g_r_responder=response.g_r_responder,
                              sealed=session.seal_handshake(payload))
        return confirm, session

    # -- M~.3 (responder side) ----------------------------------------------

    def finalize(self, pending: PendingPeerSession,
                 confirm: PeerConfirm) -> SecureSession:
        """Responder: open (M~.3); proves the initiator holds K too."""
        if pending.role != "responder" or pending.session is None:
            raise ProtocolError("finalize() is a responder-side step")
        if (confirm.g_r_initiator != pending.g_r_remote
                or confirm.g_r_responder != pending.g_r_local):
            raise ProtocolError("confirm echoes the wrong DH values")
        payload = pending.session.open_handshake(confirm.sealed)
        expected = self._confirm_payload(pending.g_r_remote,
                                         pending.g_r_local,
                                         pending.ts1, pending.ts2)
        if payload != expected:
            raise AuthenticationError("peer confirm payload mismatch")
        return pending.session

    @staticmethod
    def _confirm_payload(g_r_initiator: G1Element,
                         g_r_responder: G1Element,
                         ts1: float, ts2: float) -> bytes:
        return (Writer().var(g_r_initiator.encode())
                .var(g_r_responder.encode())
                .f64(ts1).f64(ts2)
                .done())

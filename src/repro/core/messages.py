"""Wire formats of the PEACE protocol messages (Sections IV.B / IV.C).

================  =====================================================
Paper name        Class
================  =====================================================
(M.1)             :class:`Beacon` -- router broadcast: ``g, g^r_R, ts1,
                  Sig_RSK, Cert_k, CRL, URL`` (+ optional DoS puzzle)
(M.2)             :class:`AccessRequest` -- ``g^r_j, g^r_R, ts2,
                  SIG_gsk`` (+ optional puzzle solution)
(M.3)             :class:`AccessConfirm` -- ``g^r_j, g^r_R,
                  E_K(MR_k, g^r_j, g^r_R)``
(M~.1)            :class:`PeerHello` -- ``g, g^r_j, ts1, SIG_gsk``
(M~.2)            :class:`PeerResponse` -- ``g^r_j, g^r_l, ts2, SIG_gsk``
(M~.3)            :class:`PeerConfirm` -- ``g^r_j, g^r_l,
                  E_K(g^r_j, g^r_l, ts1, ts2)``
(data)            :class:`DataPacket` -- MAC-authenticated session data
================  =====================================================

Every class is a frozen dataclass with canonical ``encode`` /
``decode``; benchmark E4 reports ``len(encode())`` per message.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.core.certs import (
    CertificateRevocationList,
    RouterCertificate,
    UserRevocationList,
)
from repro.core.groupsig import GroupSignature
from repro.core.wire import Reader, Writer
from repro.crypto.puzzles import Puzzle, PuzzleSolution
from repro.errors import EncodingError, ReproError
from repro.pairing.group import G1Element, PairingGroup
from repro.sig.curves import WeierstrassCurve


def _encode_opt(writer: Writer, blob: Optional[bytes]) -> None:
    if blob is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.var(blob)


def _decode_opt(reader: Reader) -> Optional[bytes]:
    return reader.var() if reader.u8() else None


@contextmanager
def _decoding(what: str):
    """Normalize every decode failure to :class:`EncodingError`.

    Message decoders nest component decoders (certificates, lists,
    puzzles) whose own error types -- or a stray ``ValueError`` /
    ``IndexError`` from arithmetic on attacker bytes -- must not leak
    to the caller: network-facing code dispatches on ``EncodingError``
    to drop malformed frames, and anything else would escape that
    handler.
    """
    try:
        yield
    except EncodingError:
        raise
    except (ReproError, ValueError, IndexError, OverflowError) as exc:
        raise EncodingError(f"malformed {what}: {exc}") from exc


@dataclass(frozen=True)
class Beacon:
    """(M.1): the router's periodic service announcement."""

    router_id: str
    g: G1Element            # fresh DH base chosen by the router
    g_r_router: G1Element   # g^{r_R}
    ts1: float
    signature: bytes        # ECDSA by RSK_k over signed_payload()
    certificate: RouterCertificate
    crl: CertificateRevocationList
    url: UserRevocationList
    puzzle: Optional[Puzzle] = None

    def signed_payload(self) -> bytes:
        """What RSK_k signs: ``g, g^r_R, ts1`` (+ puzzle when present)."""
        writer = (Writer().raw(b"M.1").string(self.router_id)
                  .var(self.g.encode()).var(self.g_r_router.encode())
                  .f64(self.ts1))
        _encode_opt(writer, self.puzzle.encode() if self.puzzle else None)
        return writer.done()

    def encode(self) -> bytes:
        return (Writer().raw(self.signed_payload())
                .var(self.signature)
                .var(self.certificate.encode())
                .var(self.crl.encode())
                .var(self.url.encode())
                .done())

    @classmethod
    def decode(cls, group: PairingGroup, curve: WeierstrassCurve,
               data: bytes) -> "Beacon":
        with _decoding("beacon"):
            reader = Reader(data)
            if reader.raw(3) != b"M.1":
                raise EncodingError("not a beacon")
            router_id = reader.string()
            g = group.decode_g1(reader.var())
            g_r = group.decode_g1(reader.var())
            ts1 = reader.f64()
            puzzle_blob = _decode_opt(reader)
            signature = reader.var()
            certificate = RouterCertificate.decode(curve, reader.var())
            crl = CertificateRevocationList.decode(reader.var())
            url = UserRevocationList.decode(group, reader.var())
            reader.expect_end()
            puzzle = Puzzle.decode(puzzle_blob) if puzzle_blob else None
            return cls(router_id, g, g_r, ts1, signature, certificate,
                       crl, url, puzzle)


@dataclass(frozen=True)
class AccessRequest:
    """(M.2): the user's anonymous access request."""

    g_r_user: G1Element     # g^{r_j}
    g_r_router: G1Element   # echo of g^{r_R}
    ts2: float
    group_signature: GroupSignature
    puzzle_solution: Optional[PuzzleSolution] = None

    def signed_payload(self) -> bytes:
        """What gsk[i,j] signs: ``{g^r_j, g^r_R, ts2}``."""
        return (Writer().raw(b"M.2")
                .var(self.g_r_user.encode())
                .var(self.g_r_router.encode())
                .f64(self.ts2)
                .done())

    def puzzle_binding(self) -> bytes:
        """Bytes the puzzle solution is bound to (prevents replay)."""
        return self.signed_payload()

    def encode(self) -> bytes:
        writer = (Writer().raw(self.signed_payload())
                  .var(self.group_signature.encode()))
        _encode_opt(writer, self.puzzle_solution.encode()
                    if self.puzzle_solution else None)
        return writer.done()

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "AccessRequest":
        with _decoding("access request"):
            reader = Reader(data)
            if reader.raw(3) != b"M.2":
                raise EncodingError("not an access request")
            g_r_user = group.decode_g1(reader.var())
            g_r_router = group.decode_g1(reader.var())
            ts2 = reader.f64()
            signature = GroupSignature.decode(group, reader.var())
            solution_blob = _decode_opt(reader)
            reader.expect_end()
            solution = (PuzzleSolution.decode(solution_blob)
                        if solution_blob else None)
            return cls(g_r_user, g_r_router, ts2, signature, solution)


@dataclass(frozen=True)
class AccessConfirm:
    """(M.3): the router's key-confirmation message."""

    g_r_user: G1Element
    g_r_router: G1Element
    sealed: bytes           # E_K(MR_k, g^r_j, g^r_R)

    def encode(self) -> bytes:
        return (Writer().raw(b"M.3")
                .var(self.g_r_user.encode())
                .var(self.g_r_router.encode())
                .var(self.sealed)
                .done())

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "AccessConfirm":
        reader = Reader(data)
        if reader.raw(3) != b"M.3":
            raise EncodingError("not an access confirm")
        g_r_user = group.decode_g1(reader.var())
        g_r_router = group.decode_g1(reader.var())
        sealed = reader.var()
        reader.expect_end()
        return cls(g_r_user, g_r_router, sealed)


@dataclass(frozen=True)
class PeerHello:
    """(M~.1): first message of the user-user handshake."""

    g: G1Element
    g_r_initiator: G1Element
    ts1: float
    group_signature: GroupSignature

    def signed_payload(self) -> bytes:
        return (Writer().raw(b"N.1")
                .var(self.g.encode())
                .var(self.g_r_initiator.encode())
                .f64(self.ts1)
                .done())

    def encode(self) -> bytes:
        return (Writer().raw(self.signed_payload())
                .var(self.group_signature.encode())
                .done())

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "PeerHello":
        reader = Reader(data)
        if reader.raw(3) != b"N.1":
            raise EncodingError("not a peer hello")
        g = group.decode_g1(reader.var())
        g_r = group.decode_g1(reader.var())
        ts1 = reader.f64()
        signature = GroupSignature.decode(group, reader.var())
        reader.expect_end()
        return cls(g, g_r, ts1, signature)


@dataclass(frozen=True)
class PeerResponse:
    """(M~.2): responder's authenticated reply."""

    g_r_initiator: G1Element
    g_r_responder: G1Element
    ts2: float
    group_signature: GroupSignature

    def signed_payload(self) -> bytes:
        return (Writer().raw(b"N.2")
                .var(self.g_r_initiator.encode())
                .var(self.g_r_responder.encode())
                .f64(self.ts2)
                .done())

    def encode(self) -> bytes:
        return (Writer().raw(self.signed_payload())
                .var(self.group_signature.encode())
                .done())

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "PeerResponse":
        reader = Reader(data)
        if reader.raw(3) != b"N.2":
            raise EncodingError("not a peer response")
        g_r_i = group.decode_g1(reader.var())
        g_r_r = group.decode_g1(reader.var())
        ts2 = reader.f64()
        signature = GroupSignature.decode(group, reader.var())
        reader.expect_end()
        return cls(g_r_i, g_r_r, ts2, signature)


@dataclass(frozen=True)
class PeerConfirm:
    """(M~.3): initiator's key confirmation."""

    g_r_initiator: G1Element
    g_r_responder: G1Element
    sealed: bytes           # E_K(g^r_j, g^r_l, ts1, ts2)

    def encode(self) -> bytes:
        return (Writer().raw(b"N.3")
                .var(self.g_r_initiator.encode())
                .var(self.g_r_responder.encode())
                .var(self.sealed)
                .done())

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "PeerConfirm":
        reader = Reader(data)
        if reader.raw(3) != b"N.3":
            raise EncodingError("not a peer confirm")
        g_r_i = group.decode_g1(reader.var())
        g_r_r = group.decode_g1(reader.var())
        sealed = reader.var()
        reader.expect_end()
        return cls(g_r_i, g_r_r, sealed)


@dataclass(frozen=True)
class DataPacket:
    """Session data authenticated by the hybrid MAC approach (V.C).

    After the expensive group-signature handshake, all traffic within a
    session is protected by the shared AEAD key -- this is the paper's
    "asymmetric-symmetric hybrid approach".
    """

    session_id: bytes
    sequence: int
    sealed: bytes           # AEAD(payload), AAD = session_id || sequence

    def aad(self) -> bytes:
        return Writer().var(self.session_id).u64(self.sequence).done()

    def encode(self) -> bytes:
        return (Writer().raw(b"DAT")
                .var(self.session_id)
                .u64(self.sequence)
                .var(self.sealed)
                .done())

    @classmethod
    def decode(cls, data: bytes) -> "DataPacket":
        reader = Reader(data)
        if reader.raw(3) != b"DAT":
            raise EncodingError("not a data packet")
        session_id = reader.var()
        sequence = reader.u64()
        sealed = reader.var()
        reader.expect_end()
        return cls(session_id, sequence, sealed)

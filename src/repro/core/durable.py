"""Durable router state: wire-encoded snapshot + append-only journal.

A crashed ``MeshRouter`` used to lose everything -- its CRL/URL, its
epoch, its degraded-mode bookkeeping, and every derived revocation tag.
This module gives each router a small write-ahead store so a restart
recovers the security state a peer would otherwise have to re-teach it:

* ``MemoryStorage`` / ``FileStorage`` -- the injectable byte-level
  backends.  Both model fsync semantics: ``append`` lands in an
  unsynced tail, ``sync`` makes the tail durable, and
  ``lose_unsynced`` (driven by the ``fsync_loss`` storage fault)
  drops whatever a power cut would have eaten.
* Records -- ``u32 length | u32 crc32 | payload`` frames.  The CRC is
  keyed over ``store_id + payload`` so a record spliced in from some
  *other* router's journal never verifies, and every payload carries a
  strictly increasing sequence number so replayed/reordered records
  from this journal's own past are rejected too.
* ``DurableRouterStore`` -- snapshot head + journal tail with
  auto-sync/auto-compaction policies.  ``load()`` replays the journal
  on top of the last snapshot, truncating a corrupt or torn tail back
  to the last good prefix (never a silently wrong list version: a
  record either round-trips CRC+sequence checks or the recovery stops
  before it).

Everything is deterministic on the sim clock: no wall-clock reads, no
randomness -- replaying the same journal yields the same state.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro import obs
from repro.core.wire import Reader, Writer
from repro.errors import EncodingError

FORMAT_VERSION = 1
SNAPSHOT_MAGIC = b"DJR1"

# Record kinds.
REC_SNAPSHOT = 0
REC_LISTS = 1
REC_EPOCH = 2
REC_CHANNEL = 3
REC_CHECKPOINT = 4

_RECORD_KINDS = (REC_SNAPSHOT, REC_LISTS, REC_EPOCH, REC_CHANNEL,
                 REC_CHECKPOINT)

_HEADER = struct.Struct(">II")  # length, crc32


def _pack_f64(value: float) -> bytes:
    """Bit-exact float persistence (``Writer.f64`` quantizes to ms,
    which would nudge ``lists_fetched_at`` relative to a router that
    never crashed)."""
    return struct.pack(">d", value)


def _unpack_f64(reader: Reader) -> float:
    return struct.unpack(">d", reader.raw(8))[0]


# ---------------------------------------------------------------------------
# Storage backends


class MemoryStorage:
    """In-memory backend with explicit fsync semantics."""

    def __init__(self) -> None:
        self._synced = b""
        self._tail = b""

    def append(self, data: bytes) -> None:
        self._tail += data

    def sync(self) -> None:
        self._synced += self._tail
        self._tail = b""

    def lose_unsynced(self) -> int:
        """Drop everything appended since the last ``sync`` (what a
        power cut does to an OS page cache).  Returns bytes lost."""
        lost = len(self._tail)
        self._tail = b""
        return lost

    def read(self) -> bytes:
        return self._synced + self._tail

    def replace(self, data: bytes) -> None:
        """Atomically rewrite the whole store (compaction); the result
        is considered synced."""
        self._synced = bytes(data)
        self._tail = b""

    @property
    def size(self) -> int:
        return len(self._synced) + len(self._tail)


class FileStorage:
    """File-backed storage; ``lose_unsynced`` truncates back to the
    last fsync'ed offset, ``replace`` goes through an ``os.replace``
    rename so compaction is atomic."""

    def __init__(self, path: str) -> None:
        self.path = path
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._synced_size = os.path.getsize(path)

    def append(self, data: bytes) -> None:
        with open(self.path, "ab") as handle:
            handle.write(data)

    def sync(self) -> None:
        with open(self.path, "ab") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._synced_size = os.path.getsize(self.path)

    def lose_unsynced(self) -> int:
        size = os.path.getsize(self.path)
        lost = size - self._synced_size
        if lost > 0:
            with open(self.path, "r+b") as handle:
                handle.truncate(self._synced_size)
        return max(lost, 0)

    def read(self) -> bytes:
        with open(self.path, "rb") as handle:
            return handle.read()

    def replace(self, data: bytes) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._synced_size = len(data)

    @property
    def size(self) -> int:
        return os.path.getsize(self.path)


# ---------------------------------------------------------------------------
# State model


@dataclass
class DurableState:
    """The security state a router must not lose across a crash."""

    store_id: str
    epoch: int = 0
    gpk_blob: bytes = b""
    crl_blob: bytes = b""
    url_blob: bytes = b""
    lists_fetched_at: float = 0.0
    channel_up: bool = True
    cut_off: bool = False
    num_shards: int = 0
    tag_epoch: int = 0
    tag_entries: Tuple[Tuple[bytes, bytes], ...] = ()

    def copy(self) -> "DurableState":
        return replace(self)


@dataclass(frozen=True)
class RecoveryInfo:
    """What ``DurableRouterStore.load`` found."""

    state: DurableState
    records_replayed: int
    tail_dropped: int  # bytes discarded past the last good record
    clean: bool

    @property
    def summary(self) -> str:
        return (f"replayed {self.records_replayed} record(s), "
                f"dropped {self.tail_dropped} tail byte(s), "
                f"{'clean' if self.clean else 'torn'}")


# ---------------------------------------------------------------------------
# Record encode/decode


def _encode_snapshot_fields(writer: Writer, state: DurableState) -> None:
    writer.raw(SNAPSHOT_MAGIC)
    writer.u32(FORMAT_VERSION)
    writer.string(state.store_id)
    writer.u64(state.epoch)
    writer.var(state.gpk_blob)
    writer.var(state.crl_blob)
    writer.var(state.url_blob)
    writer.raw(_pack_f64(state.lists_fetched_at))
    writer.u8(1 if state.channel_up else 0)
    writer.u8(1 if state.cut_off else 0)
    writer.u32(state.num_shards)
    writer.u64(state.tag_epoch)
    _encode_entries(writer, state.tag_entries)


def _encode_entries(writer: Writer,
                    entries: Tuple[Tuple[bytes, bytes], ...]) -> None:
    writer.u32(len(entries))
    for token_encoding, tag in entries:
        writer.var(token_encoding)
        writer.var(tag)


def _decode_entries(reader: Reader) -> Tuple[Tuple[bytes, bytes], ...]:
    count = reader.u32()
    return tuple((reader.var(), reader.var()) for _ in range(count))


def _decode_snapshot_fields(reader: Reader) -> DurableState:
    if reader.raw(len(SNAPSHOT_MAGIC)) != SNAPSHOT_MAGIC:
        raise EncodingError("bad snapshot magic")
    version = reader.u32()
    if version != FORMAT_VERSION:
        raise EncodingError(f"unsupported journal format {version}")
    state = DurableState(store_id=reader.string())
    state.epoch = reader.u64()
    state.gpk_blob = reader.var()
    state.crl_blob = reader.var()
    state.url_blob = reader.var()
    state.lists_fetched_at = _unpack_f64(reader)
    state.channel_up = bool(reader.u8())
    state.cut_off = bool(reader.u8())
    state.num_shards = reader.u32()
    state.tag_epoch = reader.u64()
    state.tag_entries = _decode_entries(reader)
    return state


def _apply_record(state: DurableState, kind: int, reader: Reader) -> None:
    """Replay one journal record onto ``state`` (snapshot excluded)."""
    if kind == REC_LISTS:
        state.crl_blob = reader.var()
        state.url_blob = reader.var()
        state.lists_fetched_at = _unpack_f64(reader)
    elif kind == REC_EPOCH:
        state.epoch = reader.u64()
        state.gpk_blob = reader.var()
        state.crl_blob = reader.var()
        state.url_blob = reader.var()
        state.lists_fetched_at = _unpack_f64(reader)
        # Tags derived under the retired epoch are useless now.
        state.tag_epoch = state.epoch
        state.tag_entries = ()
    elif kind == REC_CHANNEL:
        state.channel_up = bool(reader.u8())
        state.cut_off = bool(reader.u8())
    elif kind == REC_CHECKPOINT:
        state.tag_epoch = reader.u64()
        state.num_shards = reader.u32()
        state.tag_entries = _decode_entries(reader)
    else:
        raise EncodingError(f"unknown journal record kind {kind}")
    reader.expect_end()


# ---------------------------------------------------------------------------
# The store


class DurableRouterStore:
    """Snapshot + append-only journal for one router's security state.

    ``record_*`` methods both append a journal record and fold the
    change into the in-memory tracked state, so ``compact()`` can
    rewrite the store as a single fresh snapshot without consulting
    the router.  ``sync_every`` controls how many records may sit in
    the backend's unsynced tail (1 = sync on every record);
    ``compact_every`` bounds journal growth.
    """

    def __init__(self, storage, store_id: str, sync_every: int = 1,
                 compact_every: int = 64) -> None:
        if sync_every < 1:
            raise EncodingError("sync_every must be >= 1")
        self.storage = storage
        self.store_id = store_id
        self.sync_every = sync_every
        self.compact_every = compact_every
        self._state: Optional[DurableState] = None
        self._seq = 0
        self._records_since_sync = 0
        self._records_since_compact = 0

    # -- write path ------------------------------------------------------

    @property
    def state(self) -> Optional[DurableState]:
        """Copy of the tracked state (None before initialize/load)."""
        return self._state.copy() if self._state is not None else None

    def initialize(self, state: DurableState) -> None:
        """Reset the store to a single snapshot of ``state``."""
        if state.store_id != self.store_id:
            raise EncodingError(
                f"snapshot for {state.store_id!r} written to store "
                f"{self.store_id!r}")
        self._state = state.copy()
        self._seq = 0
        self.storage.replace(self._frame(self._snapshot_payload()))
        self._records_since_sync = 0
        self._records_since_compact = 0
        obs.counter("durable.snapshots_total")

    def record_lists(self, crl_blob: bytes, url_blob: bytes,
                     fetched_at: float) -> None:
        state = self._require_state()
        state.crl_blob = crl_blob
        state.url_blob = url_blob
        state.lists_fetched_at = fetched_at
        writer = self._record_writer(REC_LISTS)
        writer.var(crl_blob)
        writer.var(url_blob)
        writer.raw(_pack_f64(fetched_at))
        self._append(writer)

    def record_epoch(self, epoch: int, gpk_blob: bytes, crl_blob: bytes,
                     url_blob: bytes, fetched_at: float) -> None:
        state = self._require_state()
        state.epoch = epoch
        state.gpk_blob = gpk_blob
        state.crl_blob = crl_blob
        state.url_blob = url_blob
        state.lists_fetched_at = fetched_at
        state.tag_epoch = epoch
        state.tag_entries = ()
        writer = self._record_writer(REC_EPOCH)
        writer.u64(epoch)
        writer.var(gpk_blob)
        writer.var(crl_blob)
        writer.var(url_blob)
        writer.raw(_pack_f64(fetched_at))
        self._append(writer)

    def record_channel(self, channel_up: bool, cut_off: bool) -> None:
        state = self._require_state()
        state.channel_up = channel_up
        state.cut_off = cut_off
        writer = self._record_writer(REC_CHANNEL)
        writer.u8(1 if channel_up else 0)
        writer.u8(1 if cut_off else 0)
        self._append(writer)

    def record_checkpoint(self, tag_epoch: int, num_shards: int,
                          entries: Tuple[Tuple[bytes, bytes], ...]) -> None:
        state = self._require_state()
        state.tag_epoch = tag_epoch
        state.num_shards = num_shards
        state.tag_entries = tuple(entries)
        writer = self._record_writer(REC_CHECKPOINT)
        writer.u64(tag_epoch)
        writer.u32(num_shards)
        _encode_entries(writer, state.tag_entries)
        self._append(writer)

    def sync(self) -> None:
        self.storage.sync()
        self._records_since_sync = 0
        obs.counter("durable.syncs_total")

    def compact(self) -> None:
        """Rewrite the store as one snapshot of the tracked state."""
        self.initialize(self._require_state())
        obs.counter("durable.compactions_total")

    # -- read path -------------------------------------------------------

    def load(self) -> RecoveryInfo:
        """Recover state from storage, truncating any corrupt tail.

        Raises :class:`EncodingError` when not even the head snapshot
        survives -- there is no "last good" state to recover to.
        """
        data = self.storage.read()
        state: Optional[DurableState] = None
        expected_seq = 0
        replayed = 0
        offset = 0
        good_end = 0
        while offset < len(data):
            frame = self._try_frame(data, offset)
            if frame is None:
                break
            payload, next_offset = frame
            reader = Reader(payload)
            try:
                kind = reader.u8()
                seq = reader.u64()
                if kind == REC_SNAPSHOT:
                    snap = _decode_snapshot_fields(reader)
                    reader.expect_end()
                    if snap.store_id != self.store_id:
                        break
                    state = snap
                    expected_seq = seq + 1
                else:
                    if state is None or seq != expected_seq:
                        # Spliced/replayed record: right CRC, wrong
                        # position in this journal's history.
                        break
                    _apply_record(state, kind, reader)
                    expected_seq = seq + 1
                    replayed += 1
            except EncodingError:
                break
            offset = next_offset
            good_end = offset
        if state is None:
            raise EncodingError(
                f"durable store {self.store_id!r} has no recoverable "
                "snapshot")
        tail_dropped = len(data) - good_end
        if tail_dropped:
            # Physically discard the garbage so post-recovery appends
            # don't land after an undecodable gap.
            self.storage.replace(data[:good_end])
            obs.counter("durable.tail_dropped_bytes", tail_dropped)
        self._state = state.copy()
        self._seq = expected_seq
        self._records_since_sync = 0
        self._records_since_compact = 0
        obs.counter("durable.recoveries_total")
        obs.counter("durable.records_replayed_total", replayed)
        return RecoveryInfo(state=state, records_replayed=replayed,
                            tail_dropped=tail_dropped,
                            clean=tail_dropped == 0)

    # -- internals -------------------------------------------------------

    def _require_state(self) -> DurableState:
        if self._state is None:
            raise EncodingError(
                f"durable store {self.store_id!r} not initialized")
        return self._state

    def _snapshot_payload(self) -> bytes:
        writer = Writer()
        writer.u8(REC_SNAPSHOT)
        writer.u64(self._seq)
        self._seq += 1
        _encode_snapshot_fields(writer, self._require_state())
        return writer.done()

    def _record_writer(self, kind: int) -> Writer:
        self._require_state()
        writer = Writer()
        writer.u8(kind)
        writer.u64(self._seq)
        self._seq += 1
        return writer

    def _frame(self, payload: bytes) -> bytes:
        crc = zlib.crc32(self.store_id.encode("utf-8") + payload) & 0xFFFFFFFF
        return _HEADER.pack(len(payload), crc) + payload

    def _try_frame(self, data: bytes,
                   offset: int) -> Optional[Tuple[bytes, int]]:
        """Decode one frame at ``offset``; None on truncation or CRC
        mismatch (both mean: the good prefix ends here)."""
        if offset + _HEADER.size > len(data):
            return None
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            return None
        payload = data[start:end]
        expected = zlib.crc32(
            self.store_id.encode("utf-8") + payload) & 0xFFFFFFFF
        if crc != expected:
            return None
        return payload, end

    def _append(self, writer: Writer) -> None:
        self.storage.append(self._frame(writer.done()))
        obs.counter("durable.records_total")
        self._records_since_sync += 1
        self._records_since_compact += 1
        if self._records_since_sync >= self.sync_every:
            self.sync()
        if self.compact_every and (self._records_since_compact
                                   >= self.compact_every):
            self.compact()

"""Encrypted credential wallets.

A network user's group private keys live on their mobile client; this
module gives them a durable form: a password-encrypted, integrity-
protected blob holding every credential (``A_{i,j}``, ``grp_i``,
``x_j``, index, group name).  Losing a gsk means losing network access
until re-enrollment, and leaking one lets the thief both impersonate
the user and (with the A value) link the user's past sessions -- so the
wallet is sealed with the package's AEAD under a password-derived key.

The KDF is an iterated-HKDF stretch (PBKDF2-style work factor) rather
than a memory-hard function -- adequate for a reproduction, documented
as the thing to replace for production use.
"""

from __future__ import annotations

import hashlib
import secrets
from typing import Dict, Optional

from repro.core.groupsig import GroupPrivateKey
from repro.core.wire import Reader, Writer
from repro.crypto.aead import AeadKey
from repro.errors import EncodingError, SessionError
from repro.pairing.group import PairingGroup

_MAGIC = b"PEACEWLT"
_SALT_BYTES = 16
DEFAULT_ITERATIONS = 10_000


def _stretch(password: bytes, salt: bytes, iterations: int) -> bytes:
    """Password -> 32-byte wallet key via PBKDF2-HMAC-SHA256."""
    return hashlib.pbkdf2_hmac("sha256", password, salt, iterations,
                               dklen=32)


def _encode_credentials(group: PairingGroup,
                        credentials: Dict[str, GroupPrivateKey]) -> bytes:
    writer = Writer().u32(len(credentials))
    for name in sorted(credentials):
        credential = credentials[name]
        writer.string(name)
        writer.u32(credential.index[0]).u32(credential.index[1])
        writer.var(group.encode_scalar(credential.grp))
        writer.var(group.encode_scalar(credential.x))
        writer.var(credential.a.encode())
    return writer.done()


def _decode_credentials(group: PairingGroup,
                        data: bytes) -> Dict[str, GroupPrivateKey]:
    reader = Reader(data)
    count = reader.u32()
    credentials: Dict[str, GroupPrivateKey] = {}
    for _ in range(count):
        name = reader.string()
        index = (reader.u32(), reader.u32())
        grp = group.decode_scalar(reader.var())
        x = group.decode_scalar(reader.var())
        a = group.decode_g1(reader.var())
        credentials[name] = GroupPrivateKey(a=a, grp=grp, x=x,
                                            index=index)
    reader.expect_end()
    return credentials


def seal_wallet(group: PairingGroup,
                credentials: Dict[str, GroupPrivateKey],
                password: bytes,
                iterations: int = DEFAULT_ITERATIONS,
                salt: Optional[bytes] = None) -> bytes:
    """Serialize and encrypt a credential set under ``password``."""
    if not password:
        raise SessionError("refusing an empty wallet password")
    salt = salt if salt is not None else secrets.token_bytes(_SALT_BYTES)
    if len(salt) != _SALT_BYTES:
        raise SessionError("wallet salt must be 16 bytes")
    key = AeadKey(_stretch(password, salt, iterations))
    header = (Writer().raw(_MAGIC).u32(iterations).raw(salt)
              .string(group.params.name).done())
    sealed = key.seal(_encode_credentials(group, credentials), aad=header)
    return header + sealed


def open_wallet(group: PairingGroup, blob: bytes,
                password: bytes) -> Dict[str, GroupPrivateKey]:
    """Decrypt and deserialize a wallet blob.

    Raises :class:`SessionError` on a wrong password or tampering and
    :class:`EncodingError` on structural corruption / preset mismatch.
    """
    reader = Reader(blob)
    if reader.raw(len(_MAGIC)) != _MAGIC:
        raise EncodingError("not a PEACE wallet blob")
    iterations = reader.u32()
    salt = reader.raw(_SALT_BYTES)
    preset = reader.string()
    if preset != group.params.name:
        raise EncodingError(
            f"wallet was sealed for preset {preset!r}, "
            f"group is {group.params.name!r}")
    header = blob[:len(blob) - reader.remaining()]
    key = AeadKey(_stretch(password, salt, iterations))
    plain = key.open(reader.raw(reader.remaining()), aad=header)
    return _decode_credentials(group, plain)

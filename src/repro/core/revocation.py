"""Metropolitan-scale revocation: sharded URLs and the epoch tag cache.

The paper's verifier-local revocation (Eq.3) scans the whole URL -- 2
pairings per listed token per verification -- which collapses at the
ROADMAP's metropolitan scale (10^5..10^6 users).  This module makes the
scan sublinear without changing a single accept/reject outcome:

**Tag-space sharding.**  In period mode (Section V.C) the revocation
relation collapses to a *tag* comparison:

    e(T2, u_hat) / e(T1, v_hat)  ==  e(A, u_hat)

where ``u_hat`` depends only on ``(gpk, period)``.  The right side is a
pure function of the revocation token ``A`` (the tag *preimage*), so
every token's tag can be computed once per period and the URL
partitioned into ``num_shards`` groups by ``H(tag) mod num_shards``.  A
verifier computes the left side (2 pairings), hashes it, and consults
*exactly one shard* -- the pairing is injective in ``A`` for a fixed
``u_hat``, so at most one URL entry can match and shard-local lookup
returns the very ``token_index`` the serial first-match scan would.
Epoch rotation changes the period (:func:`epoch_period`), hence every
tag, hence every shard assignment: rebalance is automatic and
deterministic, not an administrative action.

**The tag cache.**  Tags are keyed by ``(gpk epoch, token)`` in a
bounded LRU (:class:`RevocationTagCache`).  Rebuilding a sharded URL
after a delta update re-derives only the *new* tokens' tags (cache
hits are pairing-free); an epoch bump strictly invalidates every entry
of the retired epoch, and a delta that removes a token evicts its
entry.  Hits/misses/evictions surface as ``revocation.cache.hit`` /
``revocation.cache.miss`` / ``revocation.cache.evict`` counters.

**Scope.**  The fast path is period-mode only: with per-signature
generators the tag depends on ``(message, r)`` and cannot be
precomputed per token.  That is the paper's own Section V.C trade --
signatures by one signer within a period (here: an epoch) are linkable
to each other, never to an identity.  Routers opt in via
:meth:`repro.core.router.MeshRouter.enable_sharded_revocation`; the
default verification path is untouched.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro import instrument, obs
from repro.core import groupsig
from repro.core.groupsig import (
    GroupPublicKey,
    GroupSignature,
    RevocationToken,
)
from repro.core.wire import Reader, Writer
from repro.errors import EncodingError, ParameterError
from repro.pairing.group import GTElement


def epoch_period(epoch: int) -> bytes:
    """The canonical period label for one gpk epoch.

    Deriving the Section V.C period generators from the *epoch* (rather
    than a wall-clock period) ties the whole sharded-revocation state to
    the key lifetime: rotating the gpk changes ``u_hat``, every token's
    tag, and therefore every shard assignment in one deterministic step.
    """
    if epoch < 0:
        raise ParameterError("epoch must be >= 0")
    return b"PEACE/url-epoch/%d" % epoch


def shard_of_tag(tag: bytes, num_shards: int) -> int:
    """Deterministic shard index for one revocation tag.

    SHA-256 of the tag's canonical GT encoding, reduced mod
    ``num_shards`` -- stable across processes and hosts (``hash()`` is
    salted per process and must not be used here).
    """
    if num_shards < 1:
        raise ParameterError("num_shards must be >= 1")
    digest = hashlib.sha256(tag).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class RevocationTagCache:
    """Bounded LRU of revocation tags keyed by ``(gpk epoch, token)``.

    The value is the tag's canonical GT encoding -- what one abstract
    pairing ``e(A, u_hat_epoch)`` produces.  Thread-safe; shared freely
    between the routers of one process (tags are public derivations of
    public tokens, there is nothing secret to isolate).
    """

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ParameterError("tag cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, bytes], bytes]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, epoch: int, token_encoding: bytes) -> Optional[bytes]:
        """Look one tag up, counting the hit/miss."""
        key = (epoch, token_encoding)
        with self._lock:
            tag = self._entries.get(key)
            if tag is not None:
                self._entries.move_to_end(key)
        if tag is None:
            obs.counter("revocation.cache.miss")
        else:
            obs.counter("revocation.cache.hit")
        return tag

    def contains(self, epoch: int, token_encoding: bytes) -> bool:
        """Counter-free peek: is this tag warm?  Used by gossip to
        decide whether a peer needs a checkpoint without skewing the
        hit/miss counters or the LRU order."""
        with self._lock:
            return (epoch, token_encoding) in self._entries

    def put(self, epoch: int, token_encoding: bytes, tag: bytes) -> None:
        evicted = 0
        with self._lock:
            self._entries[(epoch, token_encoding)] = tag
            self._entries.move_to_end((epoch, token_encoding))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            obs.counter("revocation.cache.evict", evicted)

    def evict(self, epoch: int, token_encoding: bytes) -> bool:
        """Drop one entry (URL delta removed the token)."""
        with self._lock:
            removed = self._entries.pop((epoch, token_encoding),
                                        None) is not None
        if removed:
            obs.counter("revocation.cache.evict")
        return removed

    def invalidate_epoch(self, retired_epoch: int) -> int:
        """Strictly drop every entry of one (retired) epoch."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == retired_epoch]
            for key in stale:
                del self._entries[key]
        if stale:
            obs.counter("revocation.cache.evict", len(stale))
        return len(stale)


@dataclass(frozen=True)
class ShardEntry:
    """One URL entry inside a shard: global position, token, tag."""

    index: int                 # position in the unsharded URL
    token: RevocationToken
    tag: bytes                 # canonical GT encoding of e(A, u_hat)


@dataclass(frozen=True)
class ShardedURL:
    """One epoch's URL partitioned into tag-addressed shards.

    ``shards[s]`` holds the entries whose tag hashes to ``s``, sorted by
    their *global* URL index; ``lookup`` resolves a tag to the smallest
    matching index -- exactly the token the serial first-match scan
    reports (duplicate tokens share a tag, and the serial scan stops at
    the first).
    """

    epoch: int
    url_version: int
    num_shards: int
    shards: Tuple[Tuple[ShardEntry, ...], ...]

    def __post_init__(self) -> None:
        index: Dict[bytes, int] = {}
        for shard in self.shards:
            for entry in shard:
                if entry.tag not in index or entry.index < index[entry.tag]:
                    index[entry.tag] = entry.index
        object.__setattr__(self, "_first_by_tag", index)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(len(shard) for shard in self.shards)

    def lookup(self, tag: bytes) -> Optional[int]:
        """Smallest global URL index carrying ``tag``, or ``None``.

        The dict consults only this tag's shard content (the index is
        keyed by tag, and a tag lives in exactly one shard); kept as one
        flat mapping so the lookup is a single O(1) step.
        """
        return self._first_by_tag.get(tag)

    def scan_shard(self, tag: bytes) -> Optional[int]:
        """Explicit shard-local scan (what :meth:`lookup` amortizes).

        Walks only ``shards[shard_of_tag(tag)]`` in global-index order
        and returns the first match -- the reference the bit-identity
        tests hold :meth:`lookup` to.
        """
        for entry in self.shards[shard_of_tag(tag, self.num_shards)]:
            if entry.tag == tag:
                return entry.index
        return None


class RevocationState:
    """Router-side sharded revocation for one gpk epoch.

    Owns the period generator tables (derived once per epoch from the
    gpk engine), the current :class:`ShardedURL`, and the shared
    :class:`RevocationTagCache`.  :meth:`check` costs 2 pairings plus a
    hash -- independent of ``|URL|`` -- and raises the *identical*
    :class:`~repro.errors.RevokedKeyError` (message and ``token_index``)
    the serial Eq.3 scan produces.
    """

    def __init__(self, gpk: GroupPublicKey, num_shards: int = 16,
                 cache: Optional[RevocationTagCache] = None) -> None:
        if num_shards < 1:
            raise ParameterError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.cache = cache if cache is not None else RevocationTagCache()
        self.sharded: Optional[ShardedURL] = None
        self._tokens: Tuple[RevocationToken, ...] = ()
        self._adopt_gpk(gpk)

    # -- epoch / generator management ----------------------------------

    def _adopt_gpk(self, gpk: GroupPublicKey) -> None:
        self.gpk = gpk
        self.epoch = gpk.epoch
        self.period = epoch_period(self.epoch)
        # Derived once per epoch; every check and tag build reuses the
        # tables, exactly like PeriodRevocationTable amortizes them.
        context = gpk.engine.generators(b"", 0, self.period)
        self._u_table = context.u_table
        self._v_table = context.v_table

    def rotate(self, gpk: GroupPublicKey,
               url: Optional[Sequence[RevocationToken]] = None,
               url_version: int = 0) -> None:
        """Adopt a rotated gpk: strict cache invalidation + rebalance.

        Every tag of the retired epoch is dropped from the cache, the
        period generators are re-derived, and the (new) URL is re-
        sharded under the new epoch's tags -- the deterministic
        rebalance the epoch rotation implies.
        """
        retired = self.epoch
        self._adopt_gpk(gpk)
        if gpk.epoch != retired:
            self.cache.invalidate_epoch(retired)
        self.update(url if url is not None else (), url_version)
        obs.counter("revocation.state.rotations_total")

    # -- URL maintenance ------------------------------------------------

    def _tag_of(self, token: RevocationToken) -> bytes:
        """One token's epoch tag, through the cache.

        A miss costs the one abstract pairing ``e(A, u_hat)`` the
        period table evaluates (same billing as
        :class:`~repro.core.groupsig.PeriodRevocationTable`); a hit is
        pairing-free -- that is the cache's entire point.
        """
        encoding = token.encode()
        tag = self.cache.get(self.epoch, encoding)
        if tag is None:
            instrument.note("pairing")
            value = self._u_table.pairing(token.a.point)
            tag = GTElement(value, self.gpk.group).encode()
            self.cache.put(self.epoch, encoding, tag)
        return tag

    def update(self, tokens: Sequence[RevocationToken],
               url_version: int = 0) -> ShardedURL:
        """(Re)build the sharded URL from ``tokens``.

        Tokens already tagged under this epoch hit the cache and cost
        nothing; tokens that *left* the list (a delta's ``removed``)
        have their cache entries strictly evicted, so a later re-add
        re-derives the tag instead of trusting state from before the
        removal.
        """
        tokens = tuple(tokens)
        removed = ({t.encode() for t in self._tokens}
                   - {t.encode() for t in tokens})
        # Bulk tag derivation: cache hits are pairing-free; the misses
        # share the u_hat line table per Miller loop and one batched
        # final-exponentiation easy part (PairingTable.pairing_each),
        # still billed one abstract pairing per derived tag.
        tags: list = []
        miss_slots: list = []
        for token in tokens:
            tag = self.cache.get(self.epoch, token.encode())
            tags.append(tag)
            if tag is None:
                miss_slots.append(len(tags) - 1)
        if miss_slots:
            values = self._u_table.pairing_each(
                [tokens[slot].a.point for slot in miss_slots])
            for slot, value in zip(miss_slots, values):
                instrument.note("pairing")
                tag = GTElement(value, self.gpk.group).encode()
                tags[slot] = tag
                self.cache.put(self.epoch, tokens[slot].encode(), tag)
        shards: Tuple[list, ...] = tuple([] for _ in range(self.num_shards))
        for index, (token, tag) in enumerate(zip(tokens, tags)):
            shards[shard_of_tag(tag, self.num_shards)].append(
                ShardEntry(index=index, token=token, tag=tag))
        for encoding in sorted(removed):
            self.cache.evict(self.epoch, encoding)
        self._tokens = tokens
        self.sharded = ShardedURL(
            epoch=self.epoch, url_version=url_version,
            num_shards=self.num_shards,
            shards=tuple(tuple(shard) for shard in shards))
        obs.counter("revocation.state.rebuilds_total")
        return self.sharded

    @property
    def url_version(self) -> int:
        return self.sharded.url_version if self.sharded is not None else 0

    # -- the check ------------------------------------------------------

    def check(self, message: bytes, signature: GroupSignature) -> None:
        """Eq.3 against this state's shard only; |URL|-independent.

        Computes the signature's period tag (2 counted pairings), hashes
        it into its shard, and raises
        :func:`repro.core.groupsig._revoked_error` on a match -- the
        same exception object shape, message text, and ``token_index``
        as the serial scan, enforced by ``tests/test_revocation.py``.
        ``message`` is unused in period mode (the generators depend on
        the period alone) and kept for signature parity with the scan.
        """
        del message
        with obs.span("revocation.shard_check"):
            instrument.note("pairing", 2)
            tag_value = (self._u_table.pairing(signature.t2.point)
                         * self._v_table.pairing(signature.t1.point)
                         .inverse())
            tag = GTElement(tag_value, self.gpk.group).encode()
            hit = (self.sharded.lookup(tag)
                   if self.sharded is not None else None)
        obs.counter("revocation.checks_total")
        if hit is not None:
            obs.counter("revocation.check_revoked_total")
            raise groupsig._revoked_error(hit)


@dataclass(frozen=True)
class TagCheckpoint:
    """A signed export of one router's warm epoch tags.

    A cold or freshly-restarted router adopts a peer's checkpoint to
    skip the per-token pairing re-derivation (|URL| pairings at
    metropolitan scale).  The serving router signs the whole entry set
    with its RPK/RSK pair and attaches its operator-issued ``Cert_k``,
    so adoption is gated on the same PKI a beacon is: certificate
    validity, CRL membership, and the ECDSA signature.  Tags are pure
    functions of ``(epoch, token)`` -- they transfer between routers
    verbatim -- so a checkpoint never grants authority, it only saves
    pairings; a *tampered* checkpoint would poison accept/reject
    decisions, which is why verification failure is a
    ``CertificateError``, not a silent skip.
    """

    router_id: str
    epoch: int
    url_version: int
    num_shards: int
    entries: Tuple[Tuple[bytes, bytes], ...]  # (token encoding, tag)
    certificate: bytes                        # serving router's Cert_k
    signature: bytes                          # ECDSA over signed_payload

    def signed_payload(self) -> bytes:
        writer = (Writer().raw(b"TCK").string(self.router_id)
                  .u64(self.epoch).u64(self.url_version)
                  .u32(self.num_shards).u32(len(self.entries)))
        for token_encoding, tag in self.entries:
            writer.var(token_encoding)
            writer.var(tag)
        return writer.done()

    def encode(self) -> bytes:
        return (Writer().raw(self.signed_payload())
                .var(self.certificate).var(self.signature).done())

    @classmethod
    def decode(cls, data: bytes) -> "TagCheckpoint":
        reader = Reader(data)
        if reader.raw(3) != b"TCK":
            raise EncodingError("not a tag checkpoint")
        router_id = reader.string()
        epoch = reader.u64()
        url_version = reader.u64()
        num_shards = reader.u32()
        count = reader.u32()
        entries = tuple((reader.var(), reader.var()) for _ in range(count))
        certificate = reader.var()
        signature = reader.var()
        reader.expect_end()
        return cls(router_id=router_id, epoch=epoch,
                   url_version=url_version, num_shards=num_shards,
                   entries=entries, certificate=certificate,
                   signature=signature)


def serial_scan_outcome(gpk: GroupPublicKey, message: bytes,
                        signature: GroupSignature,
                        tokens: Iterable[RevocationToken],
                        period: bytes) -> Optional[Exception]:
    """Reference outcome: the unsharded serial Eq.3 scan in period mode.

    Used by the bit-identity tests and the scale benchmark to hold the
    sharded path to the serial path's exact behaviour (outcome class,
    message text, ``token_index``).
    """
    engine = gpk.engine
    context = engine.generators(message, signature.r, period)
    try:
        groupsig._scan_url(gpk, signature, tuple(tokens), context, engine)
    except groupsig.RevokedKeyError as exc:
        return exc
    return None

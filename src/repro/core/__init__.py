"""PEACE core: the paper's primary contribution.

The group-signature variation (:mod:`repro.core.groupsig`), the five
system entities (NO, TTP, GM, users, mesh routers), the authentication
and key-agreement protocols, and the audit / tracing machinery.
"""

from repro.core.groupsig import (
    CryptoEngine,
    GroupMasterSecret,
    GroupPublicKey,
    GroupPrivateKey,
    GroupSignature,
    PeriodRevocationTable,
    RevocationToken,
    issue_member_key,
    keygen_master,
    open_signature,
    revocation_tag,
    sign,
    signature_matches_token,
    verify,
    verify_batch,
)
from repro.core.revocation import (
    RevocationState,
    RevocationTagCache,
    ShardedURL,
    epoch_period,
    shard_of_tag,
)

__all__ = [
    "RevocationState",
    "RevocationTagCache",
    "ShardedURL",
    "epoch_period",
    "shard_of_tag",
    "CryptoEngine",
    "GroupMasterSecret",
    "GroupPrivateKey",
    "GroupPublicKey",
    "GroupSignature",
    "PeriodRevocationTable",
    "RevocationToken",
    "issue_member_key",
    "keygen_master",
    "open_signature",
    "revocation_tag",
    "sign",
    "signature_matches_token",
    "verify",
    "verify_batch",
]

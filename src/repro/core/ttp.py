"""The off-line trusted third party *TTP* (Sections III.A, IV.A).

TTP stores the blinded shares ``A_{i,j} XOR x_j`` received from NO at
setup and forwards a user's share over their pre-established secure
channel when the group manager requests it.  TTP is trusted not to
disclose what it stores; by construction it cannot recover ``A_{i,j}``
or ``x_j`` from the XOR alone.  TTP is required only during setup.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.operator_entity import KeyIndex, TtpShareBundle
from repro.errors import ParameterError
from repro.sig.curves import SECP160R1, WeierstrassCurve
from repro.sig.ecdsa import EcdsaKeyPair, EcdsaPublicKey, ecdsa_generate


class TrustedThirdParty:
    """Blinded-share escrow with non-repudiation receipts."""

    def __init__(self, curve: WeierstrassCurve = SECP160R1,
                 rng: Optional[random.Random] = None) -> None:
        self.signing_key: EcdsaKeyPair = ecdsa_generate(curve, rng=rng)
        self._shares: Dict[KeyIndex, bytes] = {}
        # TTP ends up knowing which uid received which share (it
        # delivered it); still insufficient to compute x_j or A_{i,j}.
        self._deliveries: Dict[KeyIndex, bytes] = {}

    @property
    def public_key(self) -> EcdsaPublicKey:
        return self.signing_key.public

    def store_bundle(self, bundle: TtpShareBundle,
                     operator_key: EcdsaPublicKey) -> bytes:
        """Setup step 7: verify NO's signature, store, sign a receipt."""
        operator_key.require_valid(bundle.signed_payload(), bundle.signature)
        for index, share in bundle.entries:
            self._shares[index] = share
        return self.signing_key.sign(bundle.signed_payload())

    def deliver_share(self, index: KeyIndex, uid: bytes) -> bytes:
        """Setup (user side, step 2): hand ``A XOR x`` to the user.

        In deployment this flows over the user-TTP secure channel; the
        library returns it directly and the simulator models the channel.
        """
        share = self._shares.get(index)
        if share is None:
            raise ParameterError(f"no share stored for index {index}")
        self._deliveries[index] = uid
        return share

    def knows_uid_for(self, index: KeyIndex) -> Optional[bytes]:
        """What TTP could reveal under subpoena: uid <-> blinded share."""
        return self._deliveries.get(index)

    @property
    def stored_count(self) -> int:
        return len(self._shares)

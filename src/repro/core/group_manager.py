"""User group managers *GM_i* (Sections III.C, IV.A, IV.D).

A user group is any society entity (company, university, club) that
subscribes network service on behalf of its members.  The GM holds the
``(grp_i, x_j)`` components received from NO -- but never the
``A_{i,j}`` values -- and assigns them to members it has authenticated
out of band.  The GM alone binds key indices to user identities, which
is exactly the knowledge needed for the law-authority tracing step and
no more: a GM cannot link signatures (it lacks the ``A``s) and has no
more capability than an ordinary user.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.identity import UserIdentity
from repro.core.operator_entity import GmKeyBundle, KeyIndex
from repro.errors import AuditError, ParameterError
from repro.sig.curves import SECP160R1, WeierstrassCurve
from repro.sig.ecdsa import EcdsaKeyPair, EcdsaPublicKey, ecdsa_generate


@dataclass(frozen=True)
class Enrollment:
    """What a member receives from the GM: ``([i,j], grp_i, x_j)``."""

    group_name: str
    index: KeyIndex
    grp: int
    x: int


class GroupManager:
    """One user group's manager."""

    def __init__(self, name: str, curve: WeierstrassCurve = SECP160R1,
                 rng: Optional[random.Random] = None) -> None:
        self.name = name
        self.signing_key: EcdsaKeyPair = ecdsa_generate(curve, rng=rng)
        self._grp: Optional[int] = None
        self._group_id: Optional[int] = None
        self._pool: Dict[KeyIndex, int] = {}          # unassigned x_j
        self._assigned: Dict[KeyIndex, bytes] = {}    # index -> uid
        self._identities: Dict[bytes, UserIdentity] = {}
        self._member_receipts: Dict[KeyIndex, bytes] = {}
        self.epoch = 0
        # Retired epochs' assignments and receipts, kept so
        # law-authority tracing of old sessions still resolves (with
        # its non-repudiation backing): epoch -> {index: ...}.
        self._assignment_history: Dict[int, Dict[KeyIndex, bytes]] = {}
        self._receipt_history: Dict[int, Dict[KeyIndex, bytes]] = {}

    @property
    def public_key(self) -> EcdsaPublicKey:
        return self.signing_key.public

    # -- setup step 5: receive keys from NO ---------------------------------

    def accept_bundle(self, bundle: GmKeyBundle,
                      operator_key: EcdsaPublicKey) -> bytes:
        """Verify NO's signature, absorb the key pool, sign a receipt."""
        operator_key.require_valid(bundle.signed_payload(), bundle.signature)
        if bundle.group_name != self.name:
            raise ParameterError("bundle addressed to a different group")
        if self._grp is not None and self._grp != bundle.grp:
            raise ParameterError("grp_i changed across bundles")
        self._grp = bundle.grp
        self._group_id = bundle.group_id
        for index, x in bundle.entries:
            self._pool[index] = x
        return self.signing_key.sign(bundle.signed_payload())

    def begin_epoch(self, bundle: GmKeyBundle,
                    operator_key: EcdsaPublicKey) -> bytes:
        """Adopt a rotated key pool (membership renewal).

        Archives the retiring epoch's ``index -> uid`` assignments for
        historical tracing, resets the pool, and absorbs the fresh
        bundle (whose ``grp_i`` differs by design).  Members must then
        re-enroll; anyone the GM declines to re-enroll is effectively
        revoked by the rotation.
        """
        operator_key.require_valid(bundle.signed_payload(), bundle.signature)
        if bundle.group_name != self.name:
            raise ParameterError("bundle addressed to a different group")
        self._assignment_history[self.epoch] = dict(self._assigned)
        self._receipt_history[self.epoch] = dict(self._member_receipts)
        self.epoch += 1
        self._grp = bundle.grp
        self._group_id = bundle.group_id
        self._pool = dict(bundle.entries)
        self._assigned = {}
        self._member_receipts = {}
        return self.signing_key.sign(bundle.signed_payload())

    # -- member enrollment ---------------------------------------------------

    def enroll(self, identity: UserIdentity) -> Enrollment:
        """Assign a free key to an (out-of-band authenticated) member.

        The paper requires that the member actually belong to this
        society entity; we enforce it through the identity's role
        attributes.
        """
        if self._grp is None:
            raise ParameterError(f"GM {self.name!r} has no key pool yet")
        if not identity.has_role_at(self.name):
            raise ParameterError(
                f"{identity.name} holds no role at {self.name!r}")
        if not self._pool:
            raise ParameterError(
                f"GM {self.name!r} exhausted its key pool; "
                "request more keys from NO")
        index = min(self._pool)
        x = self._pool.pop(index)
        self._assigned[index] = identity.uid
        self._identities[identity.uid] = identity
        return Enrollment(group_name=self.name, index=index,
                          grp=self._grp, x=x)

    def record_member_receipt(self, index: KeyIndex, receipt: bytes,
                              member_key: EcdsaPublicKey,
                              enrollment_payload: bytes) -> None:
        """Store the member's signed proof-of-receipt (non-repudiation)."""
        member_key.require_valid(enrollment_payload, receipt)
        self._member_receipts[index] = receipt

    # -- law-authority tracing step (Section IV.D) ----------------------------

    def identify(self, index: KeyIndex,
                 epoch: Optional[int] = None) -> UserIdentity:
        """Map a key index back to the member's identity.

        Only invoked as part of the law-authority tracing protocol,
        after NO has attributed a session to this group.  ``epoch``
        selects a retired epoch's assignment table (defaults to the
        current one).
        """
        if epoch is None or epoch == self.epoch:
            table = self._assigned
        else:
            table = self._assignment_history.get(epoch, {})
        uid = table.get(index)
        if uid is None:
            raise AuditError(f"index {index} was never assigned by "
                             f"{self.name!r}")
        return self._identities[uid]

    def has_receipt(self, index: KeyIndex,
                    epoch: Optional[int] = None) -> bool:
        """Is the assignment backed by a member-signed receipt?"""
        if epoch is None or epoch == self.epoch:
            return index in self._member_receipts
        return index in self._receipt_history.get(epoch, {})

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    @property
    def member_count(self) -> int:
        return len(self._assigned)

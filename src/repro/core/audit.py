"""Privacy-enhanced accountability: audit and law-authority tracing
(Section IV.D).

Two escalation levels:

* **NO audit** -- given a logged authentication message, NO scans grt
  with Eq.3 and learns *only the user group* of the signer
  (:meth:`NetworkOperator.audit_session`).  This file adds the glue
  that locates the log entry by session identifier.
* **Law-authority tracing** -- the legal escalation: NO contributes
  ``(A_{i,j}, grp_i)``, the group manager contributes the ``index ->
  uid`` binding, and only their *joint* effort reveals the user.  The
  non-repudiation trail (GM's receipt to NO, member's receipt to GM) is
  verified along the way, giving the paper's non-frameability argument
  its operational teeth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.group_manager import GroupManager
from repro.core.identity import UserIdentity
from repro.core.operator_entity import AuditResult, NetworkOperator
from repro.core.protocols.user_router import AuthLogEntry
from repro.errors import AuditError


@dataclass(frozen=True)
class TraceResult:
    """Outcome of the full law-authority tracing protocol."""

    audit: AuditResult
    identity: UserIdentity
    receipt_backed: bool

    def describe(self) -> str:
        backing = ("with a member-signed receipt"
                   if self.receipt_backed else "WITHOUT a receipt")
        return (f"session traced to {self.identity.name} "
                f"(member of {self.audit.group_name!r}), {backing}")


class NetworkLog:
    """Aggregated authentication log across routers (the paper's
    "network log file" that audits consult)."""

    def __init__(self) -> None:
        self._entries: Dict[bytes, AuthLogEntry] = {}

    def ingest(self, entries: Iterable[AuthLogEntry]) -> None:
        for entry in entries:
            self._entries[entry.session_id] = entry

    def find(self, session_id: bytes) -> AuthLogEntry:
        entry = self._entries.get(session_id)
        if entry is None:
            raise AuditError(
                f"no log entry for session {session_id.hex()[:8]}")
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        """Iterate over entries (used by the billing aggregator)."""
        return iter(self._entries.values())


def audit_by_session(operator: NetworkOperator, log: NetworkLog,
                     session_id: bytes) -> AuditResult:
    """NO's audit protocol, steps 1-3 of Section IV.D."""
    entry = log.find(session_id)
    return operator.audit_session(entry.signed_payload,
                                  entry.group_signature)


class LawAuthority:
    """The legal escalation endpoint.

    Holds references to nothing secret; it *requests* contributions
    from NO and the relevant GM, mirroring the paper's flow: NO reports
    ``(A_{i,j}, grp_i)``, which is forwarded to GM_i, who looks up the
    assignment and replies with uid_j.
    """

    def __init__(self, name: str = "law-authority") -> None:
        self.name = name
        self.case_file: List[TraceResult] = []

    def trace_session(self, operator: NetworkOperator, log: NetworkLog,
                      gms: Dict[str, GroupManager],
                      session_id: bytes) -> TraceResult:
        """Run the complete tracing protocol for one session.

        Raises :class:`AuditError` if the session is unknown, the group
        has no registered manager, or the GM never assigned the index.
        """
        audit = audit_by_session(operator, log, session_id)
        gm = gms.get(audit.group_name)
        if gm is None:
            raise AuditError(
                f"no group manager registered for {audit.group_name!r}")
        index = operator.audit_result_index(audit)
        identity = gm.identify(index, epoch=audit.epoch)
        result = TraceResult(audit=audit, identity=identity,
                             receipt_backed=gm.has_receipt(
                                 index, epoch=audit.epoch))
        self.case_file.append(result)
        return result

"""The batch verification core: fast exact classification of signatures.

:func:`repro.core.groupsig.verify_batch` (engine mode) and the verifier
pool's workers route every item through this module.  The contract is
strict bit-identity with the serial reference path
(``groupsig.verify_one``): the same accept/reject outcome, the same
error messages, the same ``token_index`` on revocation hits, and the
same replayed :mod:`repro.instrument` operation counts -- only the
wall-clock changes.  ``tests/test_batch_core.py`` pins all four across
randomized chaos batches.

How the speed is found (all kernels in :mod:`repro.pairing.fastpath`):

* **Fused Miller + subgroup pass.**  The reference path pays two
  scalar multiplications by ``r`` for the small-subgroup check and then
  two more Miller loops for the revocation-tag legs ``e(T2, u_hat)``
  and ``e(T1, v_hat)``.  ``fused_miller_subgroup`` computes each leg's
  Miller value (inversion-free, scaled lines) *and* the exact subgroup
  verdict for T1/T2 in a single double-and-add chain -- the mul-by-r is
  the Miller chain.

* **Deferred final exponentiations.**  Raw Miller values are carried
  as integer pairs; the SPK's ``R2`` pays one shared final
  exponentiation for its two table evaluations, and the Eq.3 scan pays
  *none*: ``FE(m) == FE(t)`` is decided on the unit circle via
  ``z^h == 1`` with the norm inversions batched across tokens
  (Montgomery's trick).

* **Fixed-argument tables.**  ``e(A_k, u_hat)`` evaluates through a
  per-token line table (the pairing is symmetric, ``A_k`` is the fixed
  argument) cached on the engine per URL, and ``e(g1, g2)^-c`` goes
  through a signed-window GT table -- both amortized over the gpk's
  lifetime like every other engine table.

Operation accounting is decoupled from evaluation: the fast path notes
each abstract operation at the milestone where the serial path would
have performed it (nothing before the subgroup check passes, pairings
in the scan only up to the short-circuit hit), so shared tails and
speculative token evaluations are wall-clock-only -- the convention
documented in DESIGN.md.

Every item runs under an isolated operation counter; an unexpected
exception (not a verdict) discards the partial tally and falls back to
the serial reference path, so exotic inputs that stray off the fast
kernels' domain (e.g. a Miller value of exactly zero) are still
classified exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import instrument, obs
from repro.errors import InvalidSignature, RevokedKeyError
from repro.pairing import fastpath
from repro.mathx import batch_inverse
from repro.pairing.fields import Fp2
from repro.pairing.group import G1Element, G2Element, GTElement, _join
from repro.pairing.tate import final_exponentiation


def classify_item(gpk, message: bytes, signature, url=(), period=None,
                  check_revocation: bool = True) -> Optional[Exception]:
    """Classify one item for :func:`groupsig.verify_batch` (no outcome obs).

    Returns ``None`` / :class:`InvalidSignature` /
    :class:`RevokedKeyError` exactly as the serial batch path would.
    The fast attempt runs under a nested counter; on success its tally
    is replayed into the ambient counter, on an unexpected exception it
    is discarded and the serial reference classifier reruns the item
    from scratch.
    """
    from repro.core import groupsig

    with instrument.count_operations() as inner:
        try:
            error = _classify_fast(gpk, message, signature, url, period,
                                   check_revocation)
            ok = True
        except Exception:
            ok = False
    if ok:
        for event, amount in inner.snapshot().items():
            instrument.replay(event, amount)
        return error
    obs.counter("batch_core.fallback_total")
    return groupsig._classify_one(gpk, message, signature, url, period,
                                  check_revocation, gpk.engine, gpk.group)


def classify_one(gpk, message: bytes, signature, url=(), period=None,
                 check_revocation: bool = True) -> Optional[Exception]:
    """Drop-in for :func:`groupsig.verify_one`: classify + outcome metrics.

    Used by the verifier pool's workers so each chunk item records the
    same ``groupsig.verify_*`` outcome counters and latency histogram
    the serial path does, while the classification itself runs on the
    batch core's fast kernels (token tables warm once per worker and
    amortize across every chunk it steals).
    """
    from repro.core import groupsig

    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0
    error = classify_item(gpk, message, signature, url, period,
                          check_revocation)
    groupsig._note_verify_outcome(reg, start, error)
    return error


def _classify_fast(gpk, message: bytes, signature, url, period,
                   check_revocation: bool) -> Optional[Exception]:
    """The fast classifier; milestone-for-milestone serial accounting."""
    from repro.core import groupsig

    group = gpk.group
    curve = group.curve
    order = group.order
    p = curve.p
    engine = gpk.engine

    # Milestone 1: structural + subgroup rejection, zero notes (the
    # serial batch path rejects these before deriving any generators).
    t1, t2 = signature.t1, signature.t2
    if t1.is_identity() or t2.is_identity():
        return InvalidSignature("degenerate T1/T2")
    if not (curve.is_on_curve(t1.point) and curve.is_on_curve(t2.point)):
        return InvalidSignature("T1/T2 outside the prime-order subgroup")

    if period is None:
        # Per-signature generators: derive silently (uninstrumented
        # hashing), fuse the subgroup checks with the revocation-tag
        # Miller legs, and note the derivation only once the item
        # survives -- exactly the serial note milestones.
        data = _join((gpk.encode(), message, group.encode_scalar(
            signature.r)))
        u_pt, v_pt = fastpath.hash_h0_fast(curve, data)
        ok2, t2u_a, t2u_b = fastpath.fused_miller_subgroup(curve, t2.point,
                                                           u_pt)
        ok1, t1v_a, t1v_b = fastpath.fused_miller_subgroup(curve, t1.point,
                                                           v_pt)
        if not (ok1 and ok2):
            return InvalidSignature("T1/T2 outside the prime-order subgroup")
        instrument.note("hash_to_group", 2)
        instrument.note("psi", 2)
        u_hat = G2Element(u_pt, group)
        u = G1Element(u_pt, group)
        v = G1Element(v_pt, group)
    else:
        # Period mode: generators are item-independent and already
        # tabulated by the engine's LRU (which notes the derivation /
        # replays it on a hit), so the plain exact subgroup check plus
        # two table evaluations is the cheaper fusion here.
        if not (curve.in_subgroup(t1.point) and curve.in_subgroup(t2.point)):
            return InvalidSignature("T1/T2 outside the prime-order subgroup")
        context = engine.generators(message, signature.r, period)
        u_hat, u, v = context.u_hat, context.u, context.v
        leg = context.u_table.miller(t2.point)
        t2u_a, t2u_b = leg.a, leg.b
        leg = context.v_table.miller(t1.point)
        t1v_a, t1v_b = leg.a, leg.b

    # Milestone 2: the SPK challenge (Eq.2) -- 4 exps + 3 pairings +
    # 1 GT exp, like the serial `_verify_spk`.
    reg = obs.active()
    start = reg.clock() if reg is not None else 0.0
    c = signature.c
    with obs.span("groupsig.spk"):
        s_alpha, s_x, s_delta = (signature.s_alpha, signature.s_x,
                                 signature.s_delta)
        # The four SPK multi-exps share two base pairs, so the affine
        # odd-multiple tables are built once per pair (DualMultiExp);
        # each evaluation is one multi-exponentiation of the abstract
        # cost model, noted exactly like `group.multi_exp`.
        dual_ut = fastpath.DualMultiExp(curve, u.point, t1.point)
        dual_tv = fastpath.DualMultiExp(curve, t2.point, v.point)
        instrument.note("exp")
        r1 = G1Element(dual_ut.mul(s_alpha, -c % order), group)
        instrument.note("exp")
        left = G1Element(dual_tv.mul(s_x, -s_delta % order), group)
        instrument.note("exp")
        right = G1Element(dual_tv.mul(c, -s_alpha % order), group)
        engine.base_pairing(count_on_hit=True)
        instrument.note("pairing", 2)
        # R2 = e(left, g2) * e(right, w) * e(g1, g2)^-c.  The two NAF
        # table evaluations ride one shared Miller accumulator and one
        # shared final exponentiation (FE is a homomorphism), and the
        # last factor goes through the fixed-base GT table.
        if left.point.is_infinity():
            if right.point.is_infinity():
                prod_ab = (1, 0)
            else:
                prod_ab = fastpath.miller_eval(engine.w_naf_steps,
                                               right.point, p)
        elif right.point.is_infinity():
            prod_ab = fastpath.miller_eval(engine.g2_naf_steps,
                                           left.point, p)
        else:
            prod_ab = fastpath.miller_eval_pair(engine.g2_naf_steps,
                                                left.point,
                                                engine.w_naf_steps,
                                                right.point, p)
        prod = Fp2(prod_ab[0], prod_ab[1], p)
        instrument.note("exp_gt")
        r2 = GTElement(final_exponentiation(curve, prod)
                       * engine.gt_table.pow(-c % order), group)
        instrument.note("exp")
        r3 = G1Element(dual_ut.mul(-s_delta % order, s_x), group)
        expected = groupsig._challenge(gpk, message, signature.r, t1, t2,
                                       r1, r2, r3)
    if reg is not None:
        reg.observe("groupsig.spk_seconds", reg.clock() - start)
    if expected != c:
        return InvalidSignature("challenge mismatch (Eq.2 failed)")

    # Milestone 3: the Eq.3 revocation scan.  Token Miller values come
    # from per-URL line tables; FE(e(A_k, u_hat)) == tau is decided as
    # z^h == 1 on the unit circle with the norm inversions batched.
    # The speculative evaluation of every token is wall-clock-only:
    # pairings are noted in scan order up to the short-circuit hit,
    # exactly like the serial scan.
    if not (check_revocation and url):
        return None
    start = reg.clock() if reg is not None else 0.0
    hit: Optional[int] = None
    with obs.span("groupsig.scan"):
        if period is None:
            steps_list = engine.token_steps(url)
            token_raws = [
                fastpath.miller_eval(steps, u_pt, p) if steps else (1, 0)
                for steps in steps_list
            ]
        else:
            token_raws = []
            for token in url:
                leg = context.u_table.miller(token.a.point)
                token_raws.append((leg.a, leg.b))
        # Test FE(m_k * t1v) == FE(t2u): w_k = (m_k * t1v) * conj(t2u)
        # = m_k * T for T = t1v * conj(t2u) (associativity -- T costs
        # one product per item instead of two per token), then
        # z = w^(p-1) = conj(w)^2 / norm(w), match iff z^h == 1.
        big_t_a, big_t_b = fastpath.mul_conj(t1v_a, t1v_b, t2u_a, t2u_b, p)
        sum_t = big_t_a + big_t_b
        ws = []
        for m_a, m_b in token_raws:
            f1 = m_a * big_t_a
            f2 = m_b * big_t_b
            ws.append(((f1 - f2) % p,
                       ((m_a + m_b) * sum_t - f1 - f2) % p))
        ninvs = batch_inverse([fastpath.fp2_norm(w_a, w_b, p)
                               for w_a, w_b in ws], p)
        for k, (w_a, w_b) in enumerate(ws):
            instrument.note("pairing", 2)
            z_a = (w_a * w_a - w_b * w_b) % p * ninvs[k] % p
            z_b = (-2 * w_a * w_b) % p * ninvs[k] % p
            if fastpath.unitary_tag_is_one(z_a, z_b, curve):
                hit = k
                break
    if reg is not None:
        examined = len(url) if hit is None else hit + 1
        reg.counter("groupsig.scan_tokens_total", examined)
        reg.counter("groupsig.scan_total")
        reg.observe("groupsig.scan_seconds", reg.clock() - start)
    if hit is not None:
        return groupsig._revoked_error(hit)
    return None

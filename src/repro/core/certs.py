"""Certificates and revocation lists (paper Section IV.A / IV.B).

* :class:`RouterCertificate` -- ``Cert_k = {MR_k, RPK_k, ExpT,
  Sig_NSK}``, the mesh router credential signed by the network operator.
* :class:`CertificateRevocationList` (CRL) -- revoked router
  certificates, signed and versioned by NO, carried in beacons.
* :class:`UserRevocationList` (URL) -- revocation tokens of revoked
  group private keys (a subset of grt), signed and versioned by NO,
  carried in beacons.

Both lists carry an ``issued_at`` timestamp and an update period so
relying parties can detect staleness -- the phishing-window experiment
(E7) measures exactly how long a freshly revoked router can keep
phishing before its inability to present a fresh CRL exposes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.core.groupsig import RevocationToken
from repro.core.wire import Reader, Writer
from repro.errors import CertificateError
from repro.pairing.group import PairingGroup
from repro.sig.curves import WeierstrassCurve
from repro.sig.ecdsa import EcdsaPublicKey

#: How far ahead of the verifier's clock an ``issued_at`` may sit before
#: the artifact is rejected as future-dated.  Staleness is computed as
#: ``now - issued_at``; without this bound a future-dated list has
#: *negative* staleness and passes every freshness check until its
#: forged issue time plus one period -- letting whoever obtains one
#: (say, from an operator with a skewed clock) stretch the phishing
#: window E7 bounds.  Two minutes generously covers honest clock skew.
MAX_CLOCK_SKEW = 120.0


@dataclass(frozen=True)
class RouterCertificate:
    """``Cert_k``: binds a router id to its ECDSA public key until ExpT."""

    router_id: str
    public_key: EcdsaPublicKey
    expires_at: float
    signature: bytes  # by NO's NSK over signed_payload()

    def signed_payload(self) -> bytes:
        return (Writer().string(self.router_id)
                .var(self.public_key.encode())
                .f64(self.expires_at)
                .done())

    def encode(self) -> bytes:
        return (Writer().string(self.router_id)
                .var(self.public_key.encode())
                .f64(self.expires_at)
                .var(self.signature)
                .done())

    @classmethod
    def decode(cls, curve: WeierstrassCurve, data: bytes
               ) -> "RouterCertificate":
        reader = Reader(data)
        router_id = reader.string()
        public_key = EcdsaPublicKey.decode(curve, reader.var())
        expires_at = reader.f64()
        signature = reader.var()
        reader.expect_end()
        return cls(router_id, public_key, expires_at, signature)

    def validate(self, operator_key: EcdsaPublicKey, now: float) -> None:
        """Check NO's signature and the expiry; raise on failure."""
        if now > self.expires_at:
            raise CertificateError(
                f"certificate for {self.router_id} expired")
        if not operator_key.verify(self.signed_payload(), self.signature):
            raise CertificateError(
                f"certificate for {self.router_id} has a bad NO signature")


@dataclass(frozen=True)
class CertificateRevocationList:
    """CRL: revoked router ids, versioned and signed by NO."""

    version: int
    issued_at: float
    update_period: float
    revoked_router_ids: FrozenSet[str]
    signature: bytes

    def signed_payload(self) -> bytes:
        writer = (Writer().raw(b"CRL").u64(self.version)
                  .f64(self.issued_at).f64(self.update_period)
                  .u32(len(self.revoked_router_ids)))
        for router_id in sorted(self.revoked_router_ids):
            writer.string(router_id)
        return writer.done()

    def encode(self) -> bytes:
        return Writer().raw(self.signed_payload()).var(self.signature).done()

    @classmethod
    def decode(cls, data: bytes) -> "CertificateRevocationList":
        reader = Reader(data)
        magic = reader.raw(3)
        if magic != b"CRL":
            raise CertificateError("not a CRL blob")
        version = reader.u64()
        issued_at = reader.f64()
        update_period = reader.f64()
        count = reader.u32()
        revoked = frozenset(reader.string() for _ in range(count))
        signature = reader.var()
        reader.expect_end()
        return cls(version, issued_at, update_period, revoked, signature)

    def validate(self, operator_key: EcdsaPublicKey, now: float,
                 max_staleness: float = None,
                 max_skew: float = MAX_CLOCK_SKEW) -> None:
        """Check NO's signature, freshness, and issue-time plausibility.

        ``max_staleness`` defaults to one update period: a list older
        than that means the presenter failed to fetch the periodic
        update -- the tell that unmasks revoked phishing routers.
        ``max_skew`` bounds how far ``issued_at`` may sit *ahead* of
        ``now``; beyond it the list is future-dated and rejected (its
        staleness would be negative, passing every check until the
        forged issue time).
        """
        if not operator_key.verify(self.signed_payload(), self.signature):
            raise CertificateError("CRL has a bad NO signature")
        if self.issued_at - now > max_skew:
            raise CertificateError(
                f"CRL future-dated: issued_at is "
                f"{self.issued_at - now:.1f}s ahead of now "
                f"(skew allowance {max_skew:.1f}s)")
        limit = self.update_period if max_staleness is None else max_staleness
        if now - self.issued_at > limit:
            raise CertificateError(
                f"CRL stale: issued {now - self.issued_at:.1f}s ago, "
                f"limit {limit:.1f}s")

    def is_revoked(self, router_id: str) -> bool:
        return router_id in self.revoked_router_ids


@dataclass(frozen=True)
class UserRevocationList:
    """URL: revocation tokens of revoked group private keys."""

    version: int
    issued_at: float
    update_period: float
    tokens: Tuple[RevocationToken, ...]
    signature: bytes

    def signed_payload(self) -> bytes:
        writer = (Writer().raw(b"URL").u64(self.version)
                  .f64(self.issued_at).f64(self.update_period)
                  .u32(len(self.tokens)))
        for token in self.tokens:
            writer.var(token.encode())
        return writer.done()

    def encode(self) -> bytes:
        return Writer().raw(self.signed_payload()).var(self.signature).done()

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes
               ) -> "UserRevocationList":
        reader = Reader(data)
        magic = reader.raw(3)
        if magic != b"URL":
            raise CertificateError("not a URL blob")
        version = reader.u64()
        issued_at = reader.f64()
        update_period = reader.f64()
        count = reader.u32()
        tokens = tuple(RevocationToken.decode(group, reader.var())
                       for _ in range(count))
        signature = reader.var()
        reader.expect_end()
        return cls(version, issued_at, update_period, tokens, signature)

    def validate(self, operator_key: EcdsaPublicKey, now: float,
                 max_staleness: float = None,
                 max_skew: float = MAX_CLOCK_SKEW) -> None:
        if not operator_key.verify(self.signed_payload(), self.signature):
            raise CertificateError("URL has a bad NO signature")
        if self.issued_at - now > max_skew:
            raise CertificateError(
                f"URL future-dated: issued_at is "
                f"{self.issued_at - now:.1f}s ahead of now")
        limit = self.update_period if max_staleness is None else max_staleness
        if now - self.issued_at > limit:
            raise CertificateError("URL stale")


# ---------------------------------------------------------------------------
# Delta updates (epidemic distribution)
# ---------------------------------------------------------------------------
#
# A delta is *self-authenticating*: it carries the NO signature over the
# signed_payload of the TARGET list it reconstructs, not a signature of
# its own.  ``apply`` rebuilds the target list from the base plus the
# delta; the caller then runs the ordinary ``validate`` on the result,
# so a tampered delta (or one applied to the wrong base) can only yield
# a list whose NO signature fails -- adoption is refused and the peer
# falls back to a full signed list.  Reconstruction is exact because the
# operator only ever appends new entries at the end and removes entries
# anywhere (preserving survivor order): filter-by-removed + append-added
# reproduces the target byte-for-byte.


@dataclass(frozen=True)
class CrlDelta:
    """CRL version-to-version delta, authenticated by the target list."""

    from_version: int
    to_version: int
    issued_at: float
    update_period: float
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    list_signature: bytes  # NO's signature over the TARGET CRL payload

    def encode(self) -> bytes:
        writer = (Writer().raw(b"CRD").u64(self.from_version)
                  .u64(self.to_version).f64(self.issued_at)
                  .f64(self.update_period)
                  .u32(len(self.added)))
        for router_id in self.added:
            writer.string(router_id)
        writer.u32(len(self.removed))
        for router_id in self.removed:
            writer.string(router_id)
        return writer.var(self.list_signature).done()

    @classmethod
    def decode(cls, data: bytes) -> "CrlDelta":
        reader = Reader(data)
        if reader.raw(3) != b"CRD":
            raise CertificateError("not a CRL delta blob")
        from_version = reader.u64()
        to_version = reader.u64()
        issued_at = reader.f64()
        update_period = reader.f64()
        added = tuple(reader.string() for _ in range(reader.u32()))
        removed = tuple(reader.string() for _ in range(reader.u32()))
        signature = reader.var()
        reader.expect_end()
        return cls(from_version, to_version, issued_at, update_period,
                   added, removed, signature)

    def apply(self, base: CertificateRevocationList
              ) -> CertificateRevocationList:
        """Reconstruct the target CRL; the caller must ``validate`` it."""
        if base.version != self.from_version:
            raise CertificateError(
                f"CRL delta targets base version {self.from_version}, "
                f"have {base.version}")
        if self.to_version <= self.from_version:
            raise CertificateError("CRL delta does not advance the version")
        ids = ((base.revoked_router_ids - frozenset(self.removed))
               | frozenset(self.added))
        return CertificateRevocationList(
            self.to_version, self.issued_at, self.update_period,
            ids, self.list_signature)


@dataclass(frozen=True)
class UrlDelta:
    """URL version-to-version delta, authenticated by the target list.

    ``removed`` carries token *encodings* (the URL is order-significant,
    tokens are matched by their canonical bytes); ``added`` carries
    whole tokens, appended in order after the surviving base tokens --
    exactly how the operator grows the list.
    """

    from_version: int
    to_version: int
    issued_at: float
    update_period: float
    added: Tuple[RevocationToken, ...]
    removed: Tuple[bytes, ...]
    list_signature: bytes  # NO's signature over the TARGET URL payload

    def encode(self) -> bytes:
        writer = (Writer().raw(b"URD").u64(self.from_version)
                  .u64(self.to_version).f64(self.issued_at)
                  .f64(self.update_period)
                  .u32(len(self.added)))
        for token in self.added:
            writer.var(token.encode())
        writer.u32(len(self.removed))
        for encoding in self.removed:
            writer.var(encoding)
        return writer.var(self.list_signature).done()

    @classmethod
    def decode(cls, group: PairingGroup, data: bytes) -> "UrlDelta":
        reader = Reader(data)
        if reader.raw(3) != b"URD":
            raise CertificateError("not a URL delta blob")
        from_version = reader.u64()
        to_version = reader.u64()
        issued_at = reader.f64()
        update_period = reader.f64()
        added = tuple(RevocationToken.decode(group, reader.var())
                      for _ in range(reader.u32()))
        removed = tuple(reader.var() for _ in range(reader.u32()))
        signature = reader.var()
        reader.expect_end()
        return cls(from_version, to_version, issued_at, update_period,
                   added, removed, signature)

    def apply(self, base: UserRevocationList) -> UserRevocationList:
        """Reconstruct the target URL; the caller must ``validate`` it."""
        if base.version != self.from_version:
            raise CertificateError(
                f"URL delta targets base version {self.from_version}, "
                f"have {base.version}")
        if self.to_version <= self.from_version:
            raise CertificateError("URL delta does not advance the version")
        gone = frozenset(self.removed)
        survivors = tuple(token for token in base.tokens
                          if token.encode() not in gone)
        return UserRevocationList(
            self.to_version, self.issued_at, self.update_period,
            survivors + tuple(self.added), self.list_signature)

"""The network operator *NO* (paper Sections III.A, IV.A, IV.D).

NO owns the group master secret gamma, generates every SDH tuple, keeps
the revocation-token map ``grt`` (token -> user group), provisions mesh
routers with certified ECDSA keys, publishes the CRL and URL, and runs
the audit protocol.  Crucially, NO never learns which *user* holds which
key: key components travel to the group manager and the TTP, and the
binding to a uid happens only at the GM ("late binding").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core import groupsig
from repro.core.certs import (
    CertificateRevocationList,
    CrlDelta,
    RouterCertificate,
    UrlDelta,
    UserRevocationList,
)
from repro.core.clock import Clock, SystemClock
from repro.core.groupsig import (
    GroupMasterSecret,
    GroupPrivateKey,
    GroupPublicKey,
    RevocationToken,
)
from repro.core.wire import Writer
from repro.errors import AuditError, ParameterError
from repro.pairing.group import PairingGroup
from repro.sig.curves import SECP160R1, WeierstrassCurve
from repro.sig.ecdsa import EcdsaKeyPair, EcdsaPublicKey, ecdsa_generate

KeyIndex = Tuple[int, int]


@dataclass(frozen=True)
class GmKeyBundle:
    """Setup step 5: ``{[i,j], grp_i, x_j | for all j}`` signed by NO."""

    group_id: int
    group_name: str
    grp: int
    entries: Tuple[Tuple[KeyIndex, int], ...]   # (index, x_j)
    signature: bytes

    def signed_payload(self) -> bytes:
        writer = (Writer().raw(b"GMB").u32(self.group_id)
                  .string(self.group_name).var(_int_bytes(self.grp))
                  .u32(len(self.entries)))
        for (i, j), x in self.entries:
            writer.u32(i).u32(j).var(_int_bytes(x))
        return writer.done()


@dataclass(frozen=True)
class TtpShareBundle:
    """Setup step 7: ``{[i,j], A_{i,j} XOR x_j | for all i,j}`` signed."""

    entries: Tuple[Tuple[KeyIndex, bytes], ...]
    signature: bytes

    def signed_payload(self) -> bytes:
        writer = Writer().raw(b"TTB").u32(len(self.entries))
        for (i, j), share in self.entries:
            writer.u32(i).u32(j).var(share)
        return writer.done()


@dataclass
class _GroupRecord:
    group_id: int
    name: str
    grp: int
    next_member: int = 0
    gm_receipt: Optional[bytes] = None


@dataclass(frozen=True)
class AuditResult:
    """Outcome of NO's audit: the responsible *user group*, never a uid."""

    token: RevocationToken
    group_id: int
    group_name: str
    epoch: int = 0

    def describe(self) -> str:
        return (f"session attributed to a member of user group "
                f"{self.group_name!r} (id {self.group_id})")


@dataclass
class _EpochArchive:
    """Frozen view of a retired key epoch, kept for auditing old logs.

    The paper's membership maintenance allows periodic renewal via
    "group public key update"; sessions authenticated under a retired
    gpk must remain auditable, so NO archives each epoch's public key,
    grt, and group-name map when rotating.
    """

    epoch: int
    gpk: GroupPublicKey
    grt: List[Tuple[RevocationToken, KeyIndex]]
    group_names: Dict[int, str]


def _int_bytes(value: int) -> bytes:
    return value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")


class NetworkOperator:
    """NO: key generation, router provisioning, revocation, audit."""

    #: How many past CRL/URL versions stay answerable with a delta.
    max_list_snapshots = 32

    def __init__(self, group: PairingGroup,
                 clock: Optional[Clock] = None,
                 rng: Optional[random.Random] = None,
                 curve: WeierstrassCurve = SECP160R1,
                 crl_update_period: float = 600.0,
                 url_update_period: float = 600.0) -> None:
        self.group = group
        self.clock = clock or SystemClock()
        self.rng = rng or random.SystemRandom()
        self.curve = curve
        self.gpk, self._master = groupsig.keygen_master(group, self.rng)
        self.signing_key: EcdsaKeyPair = ecdsa_generate(curve, rng=self.rng)
        self.crl_update_period = crl_update_period
        self.url_update_period = url_update_period

        self._groups: Dict[int, _GroupRecord] = {}
        self._groups_by_name: Dict[str, int] = {}
        self._next_group_id = 1
        # grt: token -> (group_id, member index j).  NO can map any
        # signature to a user group, and no further (Section IV.D).
        self._grt: List[Tuple[RevocationToken, KeyIndex]] = []
        self._token_by_index: Dict[KeyIndex, RevocationToken] = {}

        self._router_keys: Dict[str, EcdsaKeyPair] = {}
        self._router_certs: Dict[str, RouterCertificate] = {}
        self._revoked_routers: set = set()
        self._revoked_tokens: List[RevocationToken] = []
        self._crl_version = 0
        self._url_version = 0
        self.epoch = 0
        self._archives: List[_EpochArchive] = []
        # Bounded per-version list snapshots so NO can answer "what
        # changed since version v" with a delta instead of the full
        # list.  A version older than the window gets no delta and the
        # requester falls back to the full signed list.
        self._crl_snapshots: Dict[int, FrozenSet[str]] = {0: frozenset()}
        self._url_snapshots: Dict[int, Tuple[RevocationToken, ...]] = {0: ()}

    # -- public key material -------------------------------------------------

    @property
    def public_key(self) -> EcdsaPublicKey:
        """NPK: used by everyone to validate certificates, CRL, URL."""
        return self.signing_key.public

    # -- user group registration (setup steps 2-7) ---------------------------

    def register_user_group(self, name: str, member_count: int
                            ) -> Tuple[GmKeyBundle, TtpShareBundle]:
        """Create a user group and issue its initial batch of keys.

        Returns the signed bundle for the group manager (grp_i and the
        x_j components) and the signed bundle for the TTP (the blinded
        A XOR x shares).  NO retains only the revocation tokens.
        """
        if name in self._groups_by_name:
            raise ParameterError(f"user group {name!r} already registered")
        group_id = self._next_group_id
        self._next_group_id += 1
        grp = groupsig.random_group_id(self.group, self.rng)
        record = _GroupRecord(group_id=group_id, name=name, grp=grp)
        self._groups[group_id] = record
        self._groups_by_name[name] = group_id
        gm_bundle, ttp_bundle = self._issue_batch(record, member_count)
        return gm_bundle, ttp_bundle

    def issue_additional_keys(self, group_name: str, member_count: int
                              ) -> Tuple[GmKeyBundle, TtpShareBundle]:
        """Membership addition: extend an existing group's key pool."""
        group_id = self._groups_by_name.get(group_name)
        if group_id is None:
            raise ParameterError(f"unknown user group {group_name!r}")
        return self._issue_batch(self._groups[group_id], member_count)

    def _issue_batch(self, record: _GroupRecord, member_count: int
                     ) -> Tuple[GmKeyBundle, TtpShareBundle]:
        if member_count < 1:
            raise ParameterError("member_count must be positive")
        gm_entries = []
        ttp_entries = []
        for _ in range(member_count):
            j = record.next_member
            record.next_member += 1
            index = (record.group_id, j)
            gsk = groupsig.issue_member_key(self.group, self._master,
                                            record.grp, index, self.rng,
                                            engine=self.gpk.engine)
            token = RevocationToken(gsk.a)
            self._grt.append((token, index))
            self._token_by_index[index] = token
            gm_entries.append((index, gsk.x))
            ttp_entries.append((index, groupsig.blind_share(gsk.a, gsk.x)))
        gm_bundle = GmKeyBundle(record.group_id, record.name, record.grp,
                                tuple(gm_entries), b"")
        gm_bundle = GmKeyBundle(record.group_id, record.name, record.grp,
                                tuple(gm_entries),
                                self.signing_key.sign(
                                    gm_bundle.signed_payload()))
        ttp_bundle = TtpShareBundle(tuple(ttp_entries), b"")
        ttp_bundle = TtpShareBundle(tuple(ttp_entries),
                                    self.signing_key.sign(
                                        ttp_bundle.signed_payload()))
        return gm_bundle, ttp_bundle

    def record_gm_receipt(self, group_name: str, receipt: bytes,
                          gm_key: EcdsaPublicKey,
                          bundle: GmKeyBundle) -> None:
        """Store the GM's non-repudiation receipt (setup: GM signs back)."""
        gm_key.require_valid(bundle.signed_payload(), receipt)
        self._groups[self._groups_by_name[group_name]].gm_receipt = receipt

    # -- mesh router provisioning ------------------------------------------

    def provision_router(self, router_id: str, validity: float = 86400.0
                         ) -> Tuple[EcdsaKeyPair, RouterCertificate]:
        """Issue (RPK_k, RSK_k) and the accompanying ``Cert_k``."""
        keypair = ecdsa_generate(self.curve, rng=self.rng)
        cert = RouterCertificate(router_id, keypair.public,
                                 self.clock.now() + validity, b"")
        cert = RouterCertificate(router_id, keypair.public,
                                 cert.expires_at,
                                 self.signing_key.sign(
                                     cert.signed_payload()))
        self._router_keys[router_id] = keypair
        self._router_certs[router_id] = cert
        return keypair, cert

    def reprovision_router(self, router_id: str
                           ) -> Tuple[EcdsaKeyPair, RouterCertificate]:
        """Return the credentials already issued to ``router_id``.

        A router restarting from its durable journal keeps its original
        (RPK_k, RSK_k) and ``Cert_k``; minting fresh ones (or consuming
        operator randomness) would make a restart observably different
        from a router that never crashed.
        """
        if router_id not in self._router_keys:
            raise ParameterError(
                f"router {router_id!r} was never provisioned")
        return self._router_keys[router_id], self._router_certs[router_id]

    # -- revocation ---------------------------------------------------------

    def _snapshot_crl(self) -> None:
        self._crl_snapshots[self._crl_version] = frozenset(
            self._revoked_routers)
        while len(self._crl_snapshots) > self.max_list_snapshots:
            del self._crl_snapshots[min(self._crl_snapshots)]

    def _snapshot_url(self) -> None:
        self._url_snapshots[self._url_version] = tuple(self._revoked_tokens)
        while len(self._url_snapshots) > self.max_list_snapshots:
            del self._url_snapshots[min(self._url_snapshots)]

    def revoke_router(self, router_id: str) -> None:
        """Put a router on the CRL (effective at the next publication)."""
        if router_id not in self._router_certs:
            raise ParameterError(f"unknown router {router_id!r}")
        self._revoked_routers.add(router_id)
        self._crl_version += 1
        self._snapshot_crl()

    def revoke_user_key(self, index: KeyIndex) -> RevocationToken:
        """Dynamic user revocation: move grt[i,j] into the URL."""
        token = self._token_by_index.get(index)
        if token is None:
            raise ParameterError(f"unknown key index {index}")
        if all(existing.a != token.a for existing in self._revoked_tokens):
            self._revoked_tokens.append(token)
            self._url_version += 1
            self._snapshot_url()
        return token

    def unrevoke_user_key(self, index: KeyIndex) -> RevocationToken:
        """Reinstate a key: drop grt[i,j]'s token from the URL.

        The paper's revocation is one-way, but an audit that clears a
        suspected key (or an administrative mistake) needs the reverse
        path; the version still advances so every relying party
        re-syncs and evicts the token's cached tag.
        """
        token = self._token_by_index.get(index)
        if token is None:
            raise ParameterError(f"unknown key index {index}")
        before = len(self._revoked_tokens)
        self._revoked_tokens = [existing for existing in self._revoked_tokens
                                if existing.a != token.a]
        if len(self._revoked_tokens) != before:
            self._url_version += 1
            self._snapshot_url()
        return token

    def issue_crl(self, now: Optional[float] = None
                  ) -> CertificateRevocationList:
        """Publish a freshly signed CRL (periodic update)."""
        now = self.clock.now() if now is None else now
        crl = CertificateRevocationList(
            version=self._crl_version, issued_at=now,
            update_period=self.crl_update_period,
            revoked_router_ids=frozenset(self._revoked_routers),
            signature=b"")
        return CertificateRevocationList(
            crl.version, crl.issued_at, crl.update_period,
            crl.revoked_router_ids,
            self.signing_key.sign(crl.signed_payload()))

    def issue_url(self, now: Optional[float] = None) -> UserRevocationList:
        """Publish a freshly signed URL (periodic update)."""
        now = self.clock.now() if now is None else now
        url = UserRevocationList(
            version=self._url_version, issued_at=now,
            update_period=self.url_update_period,
            tokens=tuple(self._revoked_tokens), signature=b"")
        return UserRevocationList(
            url.version, url.issued_at, url.update_period, url.tokens,
            self.signing_key.sign(url.signed_payload()))

    def list_versions(self) -> Tuple[int, int]:
        """Current authoritative ``(crl_version, url_version)``.

        The freshest versions any relying party could hold; a
        router's :meth:`~repro.core.router.MeshRouter.list_versions`
        lag behind these is its gossip-convergence debt (the health
        monitor's ``versions_behind`` signal)."""
        return (self._crl_version, self._url_version)

    def issue_crl_delta(self, from_version: int,
                        now: Optional[float] = None) -> Optional[CrlDelta]:
        """Delta from a past CRL version to the current one, or ``None``.

        ``None`` means no delta can be served -- the requester is
        already current, or ``from_version`` has aged out of the
        snapshot window -- and the caller falls back to the full list.
        The delta carries NO's signature over the *target* list it
        reconstructs, so applying it yields a normally-validatable CRL.
        """
        base = self._crl_snapshots.get(from_version)
        if base is None or from_version >= self._crl_version:
            return None
        now = self.clock.now() if now is None else now
        current = frozenset(self._revoked_routers)
        target = CertificateRevocationList(
            version=self._crl_version, issued_at=now,
            update_period=self.crl_update_period,
            revoked_router_ids=current, signature=b"")
        return CrlDelta(
            from_version=from_version, to_version=self._crl_version,
            issued_at=now, update_period=self.crl_update_period,
            added=tuple(sorted(current - base)),
            removed=tuple(sorted(base - current)),
            list_signature=self.signing_key.sign(target.signed_payload()))

    def issue_url_delta(self, from_version: int,
                        now: Optional[float] = None) -> Optional[UrlDelta]:
        """Delta from a past URL version to the current one, or ``None``.

        Exact because the URL only ever mutates by append (revoke) and
        remove-anywhere (unrevoke, epoch rotation): the current list is
        always the base's survivors in base order followed by the newly
        appended tokens, which is precisely how
        :meth:`~repro.core.certs.UrlDelta.apply` reconstructs it.
        """
        base = self._url_snapshots.get(from_version)
        if base is None or from_version >= self._url_version:
            return None
        now = self.clock.now() if now is None else now
        current = tuple(self._revoked_tokens)
        current_encodings = {token.encode() for token in current}
        base_encodings = {token.encode() for token in base}
        target = UserRevocationList(
            version=self._url_version, issued_at=now,
            update_period=self.url_update_period,
            tokens=current, signature=b"")
        return UrlDelta(
            from_version=from_version, to_version=self._url_version,
            issued_at=now, update_period=self.url_update_period,
            added=tuple(token for token in current
                        if token.encode() not in base_encodings),
            removed=tuple(sorted(base_encodings - current_encodings)),
            list_signature=self.signing_key.sign(target.signed_payload()))

    # -- membership renewal: group public key update -----------------------

    def rotate_system_keys(self) -> Dict[str, Tuple["GmKeyBundle",
                                                    "TtpShareBundle"]]:
        """Periodic renewal (Section III.A / V.A revocation case i).

        Archives the current epoch (old sessions stay auditable),
        generates a fresh ``gamma`` and gpk, reissues every registered
        group's key pool at its current size, and clears the URL --
        keys of the retired epoch are dead wholesale, so revoked users
        "do not have any group private key currently in use due to
        group public key update".

        Returns fresh ``{group_name: (gm_bundle, ttp_bundle)}`` for
        redistribution; group managers decide whom to re-enroll (a
        revoked member simply is not).
        """
        self._archives.append(_EpochArchive(
            epoch=self.epoch, gpk=self.gpk, grt=list(self._grt),
            group_names={gid: rec.name
                         for gid, rec in self._groups.items()}))
        self.epoch += 1
        self.gpk, self._master = groupsig.keygen_master(self.group,
                                                        self.rng)
        # Stamp the fresh gpk with its generation so epoch-keyed state
        # (tag caches, period derivation) rotates with it; epoch is
        # compare-excluded, so equality/wire behaviour is unchanged.
        self.gpk = GroupPublicKey(self.gpk.group, self.gpk.w,
                                  epoch=self.epoch)
        self._grt.clear()
        self._token_by_index.clear()
        self._revoked_tokens.clear()
        self._url_version += 1
        self._snapshot_url()
        bundles: Dict[str, Tuple[GmKeyBundle, TtpShareBundle]] = {}
        for record in self._groups.values():
            pool_size = record.next_member
            record.grp = groupsig.random_group_id(self.group, self.rng)
            record.next_member = 0
            bundles[record.name] = self._issue_batch(record, pool_size)
        return bundles

    # -- audit (Section IV.D) --------------------------------------------

    def audit_session(self, signed_payload: bytes,
                      signature: groupsig.GroupSignature) -> AuditResult:
        """Run the audit protocol over a logged (M.2)/(M~.*) message.

        Scans grt with Eq.3 and maps the matching token to its user
        group.  Reveals the group (nonessential attribute information)
        and nothing else.  Sessions signed under a retired epoch are
        found in the archived grt of that epoch.  Raises
        :class:`AuditError` when no token matches in any epoch (the
        signature is not by any key NO issued).
        """
        grt_view = [(token, (token, index)) for token, index in self._grt]
        match = groupsig.open_signature(self.gpk, signed_payload,
                                        signature, grt_view)
        if match is not None:
            token, index = match
            record = self._groups[index[0]]
            return AuditResult(token=token, group_id=record.group_id,
                               group_name=record.name, epoch=self.epoch)
        for archive in reversed(self._archives):
            view = [(token, (token, index)) for token, index in archive.grt]
            match = groupsig.open_signature(archive.gpk, signed_payload,
                                            signature, view)
            if match is not None:
                token, index = match
                return AuditResult(token=token, group_id=index[0],
                                   group_name=archive.group_names[index[0]],
                                   epoch=archive.epoch)
        raise AuditError("no revocation token matches the signature")

    def audit_result_index(self, result: AuditResult) -> KeyIndex:
        """Resolve an audit result back to its key index (for revocation
        and for handing ``(A_{i,j}, grp_i)`` to the law authority).

        Searches the grt of the epoch the audit matched in, so sessions
        from retired epochs remain traceable.
        """
        if result.epoch == self.epoch:
            grt = self._grt
        else:
            grt = next((a.grt for a in self._archives
                        if a.epoch == result.epoch), [])
        for token, index in grt:
            if token.a == result.token.a:
                return index
        raise AuditError("token not in grt")

    # -- introspection used by experiments -------------------------------

    def group_name(self, group_id: int) -> str:
        return self._groups[group_id].name

    @property
    def grt_size(self) -> int:
        return len(self._grt)

"""The paper's multi-faceted user identity model (Section III.C, Fig. 2).

A user's identity is the collection of their attribute information,
split into *essential* attributes (which uniquely identify the person --
name, SSN, ...) and *nonessential* attributes (social roles -- "engineer
of company X", "student of university Z").  Disclosure of nonessential
attributes alone leaves the user pseudonymous; PEACE's audit path
reveals exactly one nonessential attribute (the user-group membership)
and nothing else.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple


@dataclass(frozen=True)
class RoleAttribute:
    """One nonessential attribute: a role within a society entity."""

    role: str        # e.g. "engineer", "student", "tenant", "member"
    entity: str      # e.g. "Company X", "University Z"

    def describe(self) -> str:
        return f"{self.role} of {self.entity}"


@dataclass(frozen=True)
class UserIdentity:
    """Full identity: essential attributes + a set of role attributes.

    ``uid`` below -- the handle entities exchange -- is a digest of the
    essential attributes, standing in for "the user's essential attribute
    information" that the paper denotes uid_j.
    """

    name: str
    essential: Tuple[Tuple[str, str], ...]  # e.g. (("ssn", "..."), ...)
    roles: FrozenSet[RoleAttribute]

    @classmethod
    def build(cls, name: str, essential: Dict[str, str],
              roles: "list[RoleAttribute]") -> "UserIdentity":
        return cls(name=name,
                   essential=tuple(sorted(essential.items())),
                   roles=frozenset(roles))

    @property
    def uid(self) -> bytes:
        """Stable digest of the essential attribute information."""
        h = hashlib.sha256()
        h.update(b"repro/peace/uid")
        h.update(self.name.encode())
        for key, value in self.essential:
            h.update(key.encode())
            h.update(b"=")
            h.update(value.encode())
            h.update(b";")
        return h.digest()[:16]

    def has_role_at(self, entity: str) -> bool:
        """Is the user affiliated with the given society entity?"""
        return any(role.entity == entity for role in self.roles)

    def nonessential_view(self) -> FrozenSet[RoleAttribute]:
        """What an audit may reveal at most: roles, never essentials."""
        return self.roles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UserIdentity({self.name!r}, uid={self.uid.hex()[:8]})"

"""Network users (Sections III.A, IV.A-IV.C).

A :class:`NetworkUser` holds a real-world identity, enrolls with one or
more group managers, assembles group private keys from the GM component
and the TTP share, and runs the user-router and user-user protocol
engines with whichever credential (role) fits the current context --
the paper's multi-faceted privacy model in action: a user at the office
signs with their employer-group key, at home with their tenant-group
key, and the two are cryptographically unlinkable.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.core import groupsig
from repro.core.clock import Clock, SystemClock
from repro.core.group_manager import Enrollment, GroupManager
from repro.core.groupsig import GroupPrivateKey, GroupPublicKey
from repro.core.identity import UserIdentity
from repro.core.messages import AccessConfirm, AccessRequest, Beacon
from repro.core.protocols.session import SecureSession
from repro.core.protocols.user_router import (
    PendingUserSession,
    UserAuthEngine,
)
from repro.core.protocols.user_user import PeerAuthEngine
from repro.core.ttp import TrustedThirdParty
from repro.core.wire import Writer
from repro.errors import AuthenticationError, ParameterError
from repro.pairing.group import PairingGroup
from repro.sig.curves import SECP160R1, WeierstrassCurve
from repro.sig.ecdsa import EcdsaKeyPair, ecdsa_generate


class NetworkUser:
    """One mobile network user and their credential wallet."""

    def __init__(self, identity: UserIdentity, gpk: GroupPublicKey,
                 operator_public_key,
                 clock: Optional[Clock] = None,
                 rng: Optional[random.Random] = None,
                 curve: WeierstrassCurve = SECP160R1) -> None:
        self.identity = identity
        self.gpk = gpk
        self.group: PairingGroup = gpk.group
        self.operator_public_key = operator_public_key
        self.clock = clock or SystemClock()
        self.rng = rng or random.SystemRandom()
        # Receipt-signing key (non-repudiation during setup).
        self.signing_key: EcdsaKeyPair = ecdsa_generate(curve, rng=self.rng)
        self.credentials: Dict[str, GroupPrivateKey] = {}
        #: Period-mode signing label; set to the routers' epoch period
        #: when the deployment runs sharded revocation (``None`` keeps
        #: default per-signature generators).
        self.auth_period: Optional[bytes] = None

    def adopt_gpk(self, gpk: GroupPublicKey) -> None:
        """Adopt a rotated group public key (membership renewal).

        Existing credentials are dead under the new gpk and are
        dropped; the user must re-enroll with each group manager.
        A period-mode user follows the rotation to the new epoch's
        period label (the routers' sharded state does the same).
        """
        self.gpk = gpk
        self.credentials.clear()
        if self.auth_period is not None:
            from repro.core.revocation import epoch_period
            self.auth_period = epoch_period(gpk.epoch)

    # -- enrollment (setup, user side) ----------------------------------------

    def enroll_with(self, gm: GroupManager,
                    ttp: TrustedThirdParty) -> GroupPrivateKey:
        """Join user group ``gm``: collect both halves, assemble gsk.

        Follows the paper's three steps: GM sends ``([i,j], grp_i,
        x_j)``, TTP sends ``A XOR x_j``, the user XORs and checks the
        resulting SDH tuple against the group public key before
        accepting (``e(A, w * g2^(grp+x)) == e(g1, g2)``).  Signs a
        receipt back to the GM.
        """
        enrollment = gm.enroll(self.identity)
        share = ttp.deliver_share(enrollment.index, self.identity.uid)
        a = groupsig.unblind_share(self.group, share, enrollment.x)
        credential = GroupPrivateKey(a=a, grp=enrollment.grp,
                                     x=enrollment.x,
                                     index=enrollment.index)
        self._validate_credential(credential)
        receipt_payload = self._enrollment_payload(enrollment, share)
        receipt = self.signing_key.sign(receipt_payload)
        gm.record_member_receipt(enrollment.index, receipt,
                                 self.signing_key.public, receipt_payload)
        self.credentials[gm.name] = credential
        return credential

    def _validate_credential(self, credential: GroupPrivateKey) -> None:
        """Reject a corrupt credential before ever signing with it."""
        check = self.group.pair(
            credential.a,
            self.gpk.w * (self.gpk.g2 ** credential.exponent_sum))
        if check != self.group.pair(self.gpk.g1, self.gpk.g2):
            raise AuthenticationError(
                "assembled group private key fails the SDH check")

    @staticmethod
    def _enrollment_payload(enrollment: Enrollment, share: bytes) -> bytes:
        return (Writer().string(enrollment.group_name)
                .u32(enrollment.index[0]).u32(enrollment.index[1])
                .var(share).done())

    # -- credential selection ------------------------------------------------

    def credential_for(self, context: Optional[str] = None
                       ) -> GroupPrivateKey:
        """Pick the credential matching the current role/context.

        ``context`` names a user group; ``None`` picks an arbitrary one
        (the paper lets users choose "an appropriate group private key
        of his").
        """
        if not self.credentials:
            raise ParameterError(
                f"user {self.identity.name} holds no credentials")
        if context is None:
            return next(iter(self.credentials.values()))
        try:
            return self.credentials[context]
        except KeyError as exc:
            raise ParameterError(
                f"user {self.identity.name} holds no credential "
                f"for {context!r}") from exc

    # -- protocol frontends -----------------------------------------------

    def auth_engine(self, context: Optional[str] = None) -> UserAuthEngine:
        """User-router engine signing under the chosen role."""
        engine = UserAuthEngine(self.gpk, self.operator_public_key,
                                self.credential_for(context),
                                clock=self.clock, rng=self.rng)
        engine.auth_period = self.auth_period
        return engine

    def peer_engine(self, context: Optional[str] = None) -> PeerAuthEngine:
        """User-user engine signing under the chosen role."""
        return PeerAuthEngine(self.gpk, self.credential_for(context),
                              clock=self.clock, rng=self.rng)

    def connect_to_router(self, beacon: Beacon,
                          context: Optional[str] = None
                          ) -> Tuple[AccessRequest, PendingUserSession]:
        """Convenience: process a beacon into an access request."""
        return self.auth_engine(context).process_beacon(beacon)

    def complete_router_handshake(self, pending: PendingUserSession,
                                  confirm: AccessConfirm) -> SecureSession:
        """Convenience: finish the user-router handshake."""
        # The engine's complete() is stateless w.r.t. credentials.
        engine = UserAuthEngine(self.gpk, self.operator_public_key,
                                next(iter(self.credentials.values())),
                                clock=self.clock, rng=self.rng)
        return engine.complete(pending, confirm)

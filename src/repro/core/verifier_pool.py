"""Multi-core group-signature verification (the gateway bottleneck).

Section V.C prices verification at 6 exponentiations and ``3 + 2*|URL|``
pairings -- on a busy gateway router the revocation scan dominates and
every signature is independent, so the work shards perfectly across
cores.  :class:`VerifierPool` runs :func:`repro.core.groupsig.verify`
for chunks of a batch in warm worker processes and reassembles results
in submission order.

Design constraints, in order of importance:

1. **Outcome identity.**  For any batch, the pool returns exactly what
   :func:`groupsig.verify_batch` returns serially: the same
   accept/reject outcome per item, the same error type and message, and
   (for revocations) the same opened ``token_index``.
2. **Count identity.**  Workers run each item under a fresh
   :func:`repro.instrument.count_operations` scope and ship the
   per-item tallies home; the pool replays them into the caller's
   ambient counter.  Measured operation counts are therefore identical
   to the serial path -- parallelism changes wall-clock time only.
3. **No engine pickling.**  Worker state is rebuilt from the *wire*
   encodings (pairing preset name, ``gpk.encode()``, token encodings),
   the same bytes a real distributed verifier would receive.  Each
   worker decodes once at initialization and warms its own
   :class:`~repro.core.groupsig.CryptoEngine` tables, outside any
   counted region.

Worker sizing: ``processes=None`` sizes the pool from the cores this
process may actually run on (``os.sched_getaffinity``, not the
machine-wide ``cpu_count``) and degrades to *auto-serial* -- no worker
processes at all -- when only one core is available, where "parallel"
workers would time-slice the single core and pay IPC on top (the
measured 0.83x regression this module used to ship).  The decision is
recorded on ``pool.auto_serial`` / ``pool.host_cores`` and the
``pool.auto_serial`` obs counter; an explicit ``processes=N`` is always
honored.  Chunks are dispatched through the shared task queue (idle
workers steal the next chunk as they free up) and collected
finishes-first, so one slow chunk never blocks absorption of faster
ones behind it.

Serial fallback and recovery: when ``processes=0`` or the platform
cannot provide a process pool, every chunk runs in the calling process
through the very same chunk runner.  When a submitted chunk times out
or its worker dies mid-batch, the pool (1) re-runs that chunk and every
other in-flight chunk in the calling process -- their worker-side
results, if any ever materialize, die with the old workers, so each
chunk is absorbed exactly once and operation counts stay identical to
serial; (2) terminates the wedged worker set and respawns a fresh one
(bounded by ``max_worker_restarts``), so the rest of the batch and
later batches run parallel again.  Once the restart budget is spent
the pool degrades permanently to serial mode.  Either way results are
indistinguishable from :func:`groupsig.verify_batch`, only slower.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro import instrument, obs
from repro.core import groupsig
from repro.core.groupsig import (
    GroupPublicKey,
    GroupSignature,
    RevocationToken,
)
from repro.errors import InvalidSignature, ParameterError, RevokedKeyError
from repro.obs.spans import TraceContext
from repro.pairing.group import PairingGroup

#: Items per worker task.  Large enough to amortize IPC, small enough
#: that a straggler chunk cannot serialize the whole batch.
DEFAULT_CHUNK_SIZE = 8

#: Per-chunk result deadline.  Generous: a chunk is at most
#: ``chunk_size`` verifications, each well under a second on every
#: preset; hitting this means the worker is wedged, not slow.
DEFAULT_TASK_TIMEOUT = 120.0

#: How many times one pool may replace a dead/hung worker set before
#: giving up and running serially for good.
DEFAULT_MAX_WORKER_RESTARTS = 2

#: Backoff between worker-set respawns *within one submission*: the
#: first respawn is immediate (a transient death should not stall the
#: batch), then delays double from this base up to the cap below.  A
#: crash-looping worker set burns its restart budget at a bounded
#: rate instead of spinning through spawn/SIGKILL cycles.
DEFAULT_RESPAWN_BACKOFF = 0.05

#: Ceiling for the doubled respawn delay.
DEFAULT_MAX_RESPAWN_BACKOFF = 1.0


def available_cores() -> int:
    """Cores this process may run on (affinity-aware, min 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1

# Worker-process state, installed once by _worker_init.  One pool's
# workers serve exactly one (gpk, URL) snapshot, so a trio of module
# globals suffices.
_worker_gpk: Optional[GroupPublicKey] = None
_worker_tokens: Tuple[RevocationToken, ...] = ()


def snapshot_fingerprint(gpk: GroupPublicKey,
                         url: Sequence[RevocationToken]) -> bytes:
    """Digest of the wire form of one verification context.

    Routers compare this against a pool's stored fingerprint to decide
    whether the pool's worker-side snapshot is still current; a stale
    pool (URL rotated underneath it) must not be consulted.
    """
    digest = hashlib.sha256()
    digest.update(gpk.group.params.name.encode())
    digest.update(gpk.encode())
    for token in url:
        digest.update(token.encode())
    return digest.digest()


def _worker_init(preset: str, gpk_blob: bytes,
                 token_blobs: Tuple[bytes, ...]) -> None:
    """Rebuild the verification context from wire encodings and warm it.

    Runs once per worker process.  Table construction happens here,
    outside any instrumented region, mirroring the parent process where
    the engine is warm before the measured batch begins.
    """
    global _worker_gpk, _worker_tokens
    group = PairingGroup(preset)
    _worker_gpk = GroupPublicKey.decode(group, gpk_blob)
    _worker_tokens = tuple(RevocationToken.decode(group, blob)
                           for blob in token_blobs)
    engine = _worker_gpk.engine
    engine.g2_table
    engine.w_table
    engine.base_pairing(count_on_hit=False)
    # Batch-core tables: the NAF step tables for the SPK's R2 legs, the
    # fixed-base GT table for e(g1, g2)^-c, and the per-token line
    # tables for this pool's URL snapshot.  Built once here, they make
    # every chunk the worker steals run entirely on warm state.
    engine.g2_naf_steps
    engine.w_naf_steps
    engine.gt_table
    if _worker_tokens:
        engine.token_steps(_worker_tokens)


def _worker_run(task: tuple) -> tuple:
    """Verify one chunk inside a worker; see :func:`_run_chunk`.

    Returns ``(chunk_result, span_snapshot_or_None)``.  When any item
    carries a :class:`~repro.obs.spans.TraceContext`, the chunk runs
    under a fresh worker-local registry whose span ids are namespaced
    by this worker's pid; the resulting span-log snapshot ships home
    with the outcomes so the parent can stitch the worker-side
    verification spans into the submitting traces.  Only *spans* are
    shipped -- worker-side counters/histograms are discarded, keeping
    the parent's aggregate metrics identical to the untraced path (op
    counts travel separately as per-item tallies, exactly as before).
    """
    period, check_revocation, items = task
    decoded = [(index, message,
                GroupSignature.decode(_worker_gpk.group, sig_blob),
                TraceContext.from_tuple(ctx))
               for index, message, sig_blob, ctx in items]
    if not any(ctx is not None for _i, _m, _s, ctx in decoded):
        return (_run_chunk(_worker_gpk, _worker_tokens, decoded, period,
                           check_revocation), None)
    registry = obs.MetricsRegistry(span_id_prefix=f"w{os.getpid()}.")
    with obs.collecting(registry):
        result = _run_chunk(_worker_gpk, _worker_tokens, decoded, period,
                            check_revocation)
    return (result, registry.snapshot()["spans"])


def _run_chunk(gpk: GroupPublicKey,
               tokens: Sequence[RevocationToken],
               items: Sequence[Tuple[int, bytes, GroupSignature,
                                     Optional[TraceContext]]],
               period: Optional[bytes],
               check_revocation: bool) -> list:
    """Verify ``(index, message, signature, trace_ctx)`` items one by one.

    Shared by worker processes and the serial fallback so both paths
    are literally the same code.  Each item runs under its own counter;
    the caller replays the returned tallies, keeping measured counts
    identical whether the work happened here or across a pipe.  An item
    with a trace context gets a ``pool.verify_item`` span parented
    under it (the groupsig spk/scan spans nest inside), attributing the
    item's crypto ops to the originating handshake's trace.

    Items run on the batch core's fast kernels
    (:func:`repro.core.batch_core.classify_one`) whenever the gpk
    carries an engine -- outcome and replayed-count identical to
    :func:`groupsig.verify_one` by the batch core's contract -- so the
    pool inherits the single-core batch speedup before parallelism
    multiplies it.
    """
    from repro.core import batch_core

    classify = (batch_core.classify_one if gpk.engine is not None
                else groupsig.verify_one)
    out = []
    for index, message, signature, ctx in items:
        with obs.span("pool.verify_item", context=ctx, index=index,
                      pid=os.getpid()) if ctx is not None \
                else _UNTRACED_ITEM:
            with instrument.count_operations() as ops:
                error = classify(
                    gpk, message, signature, url=tokens, period=period,
                    check_revocation=check_revocation)
        if error is None:
            outcome = None
        elif isinstance(error, RevokedKeyError):
            outcome = ("revoked", str(error),
                       getattr(error, "token_index", None))
        else:
            outcome = ("invalid", str(error))
        out.append((index, outcome, ops.snapshot()))
    return out


class _Untraced:
    """Do-nothing context for items verified without a trace context."""

    __slots__ = ()

    def __enter__(self) -> "_Untraced":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_UNTRACED_ITEM = _Untraced()


def _chaos_hang(seconds: float) -> None:  # pragma: no cover - worker side
    """Fault-injection task: wedge the worker that picks it up.

    Used by :class:`repro.faults.FaultInjector`'s ``hang_worker`` fault
    to make a worker unresponsive without killing it -- the classic
    straggler.  The sleep runs in the worker process, so terminating
    the pool (which :meth:`VerifierPool.respawn_workers` does) reclaims
    it.
    """
    import time
    time.sleep(seconds)


def _decode_outcome(encoded) -> Optional[Exception]:
    if encoded is None:
        return None
    if encoded[0] == "revoked":
        error = RevokedKeyError(encoded[1])
        error.token_index = encoded[2]
        return error
    return InvalidSignature(encoded[1])


class VerifierPool:
    """Warm worker processes sharding batch verification for one gpk+URL.

    The pool snapshots the verification context (gpk and revocation
    list) *by wire encoding* at construction; workers never receive
    live engine state.  Use as a context manager, or call
    :meth:`close` -- worker processes are OS resources.

    ``processes=0`` requests the documented serial mode: no processes
    are spawned and :meth:`verify_batch` runs every chunk in the
    calling process (useful as an A/B control and on single-core
    hosts).  ``processes=None`` sizes the pool from
    :func:`available_cores` and auto-selects serial mode when only one
    core is available (``auto_serial`` is then True); an explicit
    worker count is honored as given.
    """

    def __init__(self, gpk: GroupPublicKey,
                 url: Sequence[RevocationToken] = (),
                 processes: Optional[int] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_inflight: Optional[int] = None,
                 task_timeout: float = DEFAULT_TASK_TIMEOUT,
                 start_method: Optional[str] = None,
                 max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
                 respawn_backoff: float = DEFAULT_RESPAWN_BACKOFF,
                 max_respawn_backoff: float = DEFAULT_MAX_RESPAWN_BACKOFF
                 ) -> None:
        if chunk_size < 1:
            raise ParameterError("chunk_size must be at least 1")
        if processes is not None and processes < 0:
            raise ParameterError("processes must be >= 0")
        if max_worker_restarts < 0:
            raise ParameterError("max_worker_restarts must be >= 0")
        if respawn_backoff < 0 or max_respawn_backoff < 0:
            raise ParameterError("respawn backoff must be >= 0")
        self.gpk = gpk
        self.tokens: Tuple[RevocationToken, ...] = tuple(url)
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.fingerprint = snapshot_fingerprint(gpk, self.tokens)
        self.serial_fallbacks = 0  # chunks that ran in-process instead
        self.max_worker_restarts = max_worker_restarts
        self.worker_restarts = 0   # respawns performed so far
        self.respawn_backoff = respawn_backoff
        self.max_respawn_backoff = max_respawn_backoff
        self.respawn_delays: List[float] = []  # applied delays, in order
        self._batch_respawns = 0   # respawns within the current batch
        self.host_cores = available_cores()
        self.auto_serial = False
        if processes is None:
            # Parallelism cannot pay on a single available core: the
            # workers would time-slice it and add IPC on top.  Run the
            # chunks in-process instead and say so.
            if self.host_cores <= 1:
                processes = 0
                self.auto_serial = True
                obs.counter("pool.auto_serial")
            else:
                processes = self.host_cores
        self.processes = processes
        self.max_inflight = max_inflight or max(2 * processes, 2)
        self._start_method = start_method
        self._initargs = (gpk.group.params.name, gpk.encode(),
                          tuple(t.encode() for t in self.tokens))
        self._pool = self._spawn() if processes > 0 else None

    # -- lifecycle ------------------------------------------------------

    def _spawn(self):
        """One fresh worker set, or ``None`` when the host can't."""
        try:
            context = (multiprocessing.get_context(self._start_method)
                       if self._start_method else multiprocessing)
            return context.Pool(processes=self.processes,
                                initializer=_worker_init,
                                initargs=self._initargs)
        except (OSError, ValueError, ImportError):
            # No usable multiprocessing on this host; documented
            # fallback is silent serial operation.
            return None

    @property
    def is_parallel(self) -> bool:
        """True when worker processes are live (not serial mode)."""
        return self._pool is not None

    def matches(self, gpk: GroupPublicKey,
                url: Sequence[RevocationToken]) -> bool:
        """Is the worker-side snapshot current for this gpk and URL?"""
        return snapshot_fingerprint(gpk, url) == self.fingerprint

    def worker_pids(self) -> List[int]:
        """Live worker process ids (health introspection, chaos)."""
        if self._pool is None:
            return []
        return [proc.pid for proc in self._pool._pool
                if proc.pid is not None]

    def inject_worker_hang(self, seconds: float = 3600.0) -> bool:
        """Chaos hook: wedge one worker in a long sleep.

        The next chunk unlucky enough to land on that worker times
        out, driving the requeue-and-respawn path.  Returns False in
        serial mode (nothing to hang).
        """
        if self._pool is None:
            return False
        self._pool.apply_async(_chaos_hang, (seconds,))
        return True

    def _next_respawn_delay(self) -> float:
        """Delay to apply before the next respawn of this submission.

        Capped exponential: respawn 1 is free, respawn ``n`` waits
        ``respawn_backoff * 2**(n-2)`` bounded by
        ``max_respawn_backoff``.  The counter resets per
        :meth:`verify_batch` call, so a later healthy batch is not
        taxed for an earlier sick one.
        """
        self._batch_respawns += 1
        if self._batch_respawns <= 1 or self.respawn_backoff <= 0:
            delay = 0.0
        else:
            delay = min(
                self.respawn_backoff * (2 ** (self._batch_respawns - 2)),
                self.max_respawn_backoff)
        self.respawn_delays.append(delay)
        if delay > 0:
            obs.counter("pool.respawn_backoffs_total")
        return delay

    def respawn_workers(self) -> bool:
        """Replace the (dead/hung) worker set with a fresh one.

        Terminating the old pool reaps its processes *and* orphans any
        still-undelivered chunk results with it -- the caller must have
        already requeued those chunks in-process, which is what keeps
        replayed operation counts identical to serial.  Bounded by
        ``max_worker_restarts``; past the budget the pool stays serial.
        Returns True when a new worker set is live.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self.processes == 0 \
                or self.worker_restarts >= self.max_worker_restarts:
            return False
        self.worker_restarts += 1
        obs.counter("pool.worker_restarts")
        self._pool = self._spawn()
        return self._pool is not None

    def close(self) -> None:
        """Terminate the workers.  Idempotent."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "VerifierPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- verification ---------------------------------------------------

    def verify_batch(self, batch: Sequence[Tuple[bytes, GroupSignature]],
                     period: Optional[bytes] = None,
                     check_revocation: bool = True,
                     traces: Optional[Sequence[Optional[TraceContext]]]
                     = None) -> List[Optional[Exception]]:
        """Drop-in parallel :func:`groupsig.verify_batch`.

        Returns one entry per input in input order: ``None`` on
        acceptance or the exception instance serial verification would
        have produced (same type, message, and ``token_index``).
        Chunks are submitted with at most ``max_inflight`` outstanding;
        results are collected strictly in submission order.  A chunk
        that times out or whose worker dies is re-run in this process
        along with every other chunk that was in flight on the broken
        worker set (their late results are discarded with the workers,
        so nothing is double-counted); the workers are then respawned
        for the rest of the batch, or -- once the restart budget is
        spent -- the remainder runs serially.

        ``traces`` (one :class:`~repro.obs.spans.TraceContext` or
        ``None`` per item) stitches each item's worker-side
        verification span under the supplied context; worker span
        snapshots are merged into the caller's ambient registry when
        chunks complete.  Op tallies are *replayed* into the caller's
        counter without re-attributing them to the caller's open span
        (they already live in the shipped worker spans).
        """
        if not batch:
            return []
        if traces is not None and len(traces) != len(batch):
            raise ParameterError("traces must align 1:1 with batch items")
        self._batch_respawns = 0
        reg = obs.active()
        batch_start = reg.clock() if reg is not None else 0.0
        chunks: List[List[Tuple[int, bytes, GroupSignature,
                                Optional[TraceContext]]]] = []
        for start in range(0, len(batch), self.chunk_size):
            chunks.append([
                (index, message, signature,
                 traces[index] if traces is not None else None)
                for index, (message, signature)
                in enumerate(batch[start:start + self.chunk_size], start)])

        results: List[Optional[Exception]] = [None] * len(batch)

        def absorb(chunk_result: list) -> None:
            for index, outcome, ops in chunk_result:
                results[index] = _decode_outcome(outcome)
                for event, amount in ops.items():
                    instrument.replay(event, amount)

        def finish_batch() -> List[Optional[Exception]]:
            if reg is not None:
                reg.counter("pool.batches_total")
                reg.counter("pool.batch_items_total", len(batch))
                reg.observe("pool.batch_seconds",
                            reg.clock() - batch_start)
                reg.gauge("pool.serial_fallbacks", self.serial_fallbacks)
            return results

        def run_serial(chunk, fallback: bool = True) -> None:
            if fallback:
                self.serial_fallbacks += 1
            start = reg.clock() if reg is not None else 0.0
            absorb(_run_chunk(self.gpk, self.tokens, chunk, period,
                              check_revocation))
            if reg is not None:
                kind = "fallback" if fallback else "serial"
                reg.counter(f"pool.chunks_{kind}_total")
                reg.observe("pool.chunk_seconds", reg.clock() - start)

        if self._pool is None:
            for chunk in chunks:
                run_serial(chunk, fallback=False)
            return finish_batch()

        # In flight: (chunk, handle, submitted_at, deadline).  A plain
        # list -- collection scans it for *whichever* handle is ready.
        pending: List[tuple] = []
        remaining = deque(chunks)

        def recover(failed_chunk, counter_name: str) -> None:
            """One worker-set failure: requeue everything in flight
            in-process, then respawn.  The failed chunk and every
            pending chunk run through ``run_serial`` exactly once;
            whatever the old workers might still produce is orphaned
            by the terminate inside :meth:`respawn_workers`, so no
            result -- and no replayed op tally -- lands twice."""
            if reg is not None:
                reg.counter(counter_name)
            run_serial(failed_chunk)
            while pending:
                chunk, _handle, _submitted, _deadline = pending.pop()
                run_serial(chunk)
            if self.processes \
                    and self.worker_restarts < self.max_worker_restarts:
                delay = self._next_respawn_delay()
                if delay > 0:
                    time.sleep(delay)
            self.respawn_workers()

        def collect_one() -> None:
            """Absorb the next *finished* chunk, whichever it is.

            Workers steal chunks from the shared task queue as they
            free up, so completion order is not submission order; the
            submission-order ``collect_oldest`` this replaces could
            leave finished results (and their pipe buffers) parked
            behind one slow chunk.  Each in-flight chunk keeps its own
            wall-clock deadline; the first to exceed it triggers the
            requeue-and-respawn recovery.
            """
            while True:
                for i, entry in enumerate(pending):
                    if entry[1].ready():
                        chunk, handle, submitted, _deadline = \
                            pending.pop(i)
                        try:
                            chunk_result, span_snap = handle.get(0)
                        except Exception:
                            # A dead/poisoned worker.
                            recover(chunk, "pool.chunk_failures_total")
                            return
                        absorb(chunk_result)
                        if span_snap is not None and reg is not None:
                            reg.merge_spans(span_snap)
                        if reg is not None:
                            reg.counter("pool.chunks_parallel_total")
                            reg.observe("pool.chunk_seconds",
                                        reg.clock() - submitted)
                        return
                now = time.monotonic()
                expired = next((i for i, entry in enumerate(pending)
                                if now >= entry[3]), None)
                if expired is not None:
                    chunk = pending.pop(expired)[0]
                    recover(chunk, "pool.chunk_failures_total")
                    return
                # Nothing ready, nothing expired: nap on the oldest
                # handle, then rescan (another chunk may finish first).
                pending[0][1].wait(0.05)

        while remaining or pending:
            if self._pool is None:
                # Restart budget spent (or spawn failed): pending is
                # empty by construction, drain the rest serially.
                while remaining:
                    run_serial(remaining.popleft())
                break
            if remaining and len(pending) < self.max_inflight:
                chunk = remaining.popleft()
                task = (period, check_revocation,
                        [(index, message, signature.encode(),
                          ctx.to_tuple() if ctx is not None else None)
                         for index, message, signature, ctx in chunk])
                try:
                    handle = self._pool.apply_async(_worker_run, (task,))
                except Exception:
                    # Pool already closed/terminated under us.
                    recover(chunk, "pool.submit_failures_total")
                    continue
                pending.append((chunk, handle,
                                reg.clock() if reg is not None else 0.0,
                                time.monotonic() + self.task_timeout))
                continue
            collect_one()
        return finish_batch()

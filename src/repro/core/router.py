"""Mesh routers *MR_k* (Sections III.A, IV.B).

A mesh router broadcasts beacons, runs the router side of the
user-router handshake, maintains its session table and authentication
log (the audit trail), and periodically refreshes the CRL / URL from NO
over their pre-established secure channel.

The refresh model matters for experiment E7: a *revoked* router keeps
serving its last-fetched CRL, which goes stale after one update period
-- precisely the paper's bound on the phishing window.

Two distinct ways a router stops getting fresh lists:

* **Revocation** (:meth:`MeshRouter.sever_operator_channel`): NO cut
  the router off on purpose.  The router keeps serving its stale lists
  indefinitely -- that *is* the adversarial behaviour E7 measures.
* **Channel loss** (:meth:`MeshRouter.set_operator_channel`): an honest
  router lost its backhaul (fiber cut, NO outage).  It enters *degraded
  mode*: it keeps serving its last-known CRL/URL while they are younger
  than ``staleness_grace`` seconds, then refuses service with
  :class:`~repro.errors.DegradedModeError` rather than authenticate
  against lists it knows are stale.  Restoring the channel refreshes
  immediately and clears the degradation.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Tuple

from repro import obs
from repro.core.certs import (
    CertificateRevocationList,
    RouterCertificate,
    UserRevocationList,
)
from repro.core.clock import Clock, SystemClock
from repro.core.messages import AccessConfirm, AccessRequest, Beacon
from repro.core.operator_entity import NetworkOperator
from repro.core.protocols.dos import DosPolicy
from repro.core.protocols.session import SecureSession
from repro.core.protocols.user_router import RouterAuthEngine
from repro.errors import DegradedModeError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.verifier_pool import VerifierPool


class MeshRouter:
    """One mesh router, provisioned by ``operator``."""

    def __init__(self, router_id: str, operator: NetworkOperator,
                 clock: Optional[Clock] = None,
                 rng: Optional[random.Random] = None,
                 cert_validity: float = 30 * 86400.0,
                 dos_policy: Optional[DosPolicy] = None,
                 staleness_grace: float = 600.0) -> None:
        self.router_id = router_id
        self.operator = operator
        self.clock = clock or SystemClock()
        self.rng = rng or random.Random()
        keypair, certificate = operator.provision_router(
            router_id, validity=cert_validity)
        self.keypair = keypair
        self.certificate: RouterCertificate = certificate
        self._crl: CertificateRevocationList = operator.issue_crl()
        self._url: UserRevocationList = operator.issue_url()
        self._cut_off = False   # set when NO severs the secure channel
        self.staleness_grace = staleness_grace
        self._channel_up = True          # honest backhaul state
        self._refresh_silent_failure = False   # chaos: refreshes no-op
        self._lists_fetched_at = self.clock.now()
        self.engine = RouterAuthEngine(
            router_id=router_id, keypair=keypair, certificate=certificate,
            gpk=operator.gpk, crl_provider=lambda: self._crl,
            url_provider=lambda: self._url, clock=self.clock, rng=self.rng,
            dos_policy=dos_policy)

    # -- list refresh over the NO secure channel ------------------------------

    def refresh_lists(self) -> None:
        """Periodic CRL/URL update; fails silently once NO cut us off
        (a revoked router can no longer obtain fresh lists) and while
        the backhaul channel is down (an honest router cannot reach
        NO)."""
        if self._cut_off or not self._channel_up:
            return
        if self._refresh_silent_failure:   # chaos: stale_lists fault
            obs.counter("router.refresh_suppressed_total")
            return
        with obs.timer("router.list_refresh_seconds"):
            self._crl = self.operator.issue_crl()
            self._url = self.operator.issue_url()
        self._lists_fetched_at = self.clock.now()
        obs.counter("router.list_refresh_total")

    def sever_operator_channel(self) -> None:
        """Called when NO revokes this router: no more fresh lists."""
        self._cut_off = True

    # -- degraded mode (honest channel loss, NOT revocation) ------------------

    def set_operator_channel(self, up: bool) -> None:
        """Flip the honest backhaul channel to NO.

        Going down puts the router in *degraded mode*; coming back up
        refreshes the lists immediately and clears the degradation.  A
        revoked router (:meth:`sever_operator_channel`) is exempt:
        revocation is permanent and keeps the E7 stale-list behaviour.
        """
        if self._cut_off:
            return
        if up and not self._channel_up:
            self._channel_up = True
            obs.counter("router.channel_restored_total")
            self.refresh_lists()
        elif not up and self._channel_up:
            self._channel_up = False
            obs.counter("router.channel_severed_total")

    def set_refresh_silent_failure(self, failing: bool) -> None:
        """Chaos hook: make :meth:`refresh_lists` silently do nothing,
        leaving the router to serve ever-staler lists without knowing."""
        self._refresh_silent_failure = failing

    @property
    def degraded(self) -> bool:
        """True while an honest router has no channel to NO."""
        return not self._channel_up and not self._cut_off

    def lists_age(self, now: Optional[float] = None) -> float:
        """Seconds since the CRL/URL were last fetched from NO."""
        return (self.clock.now() if now is None else now) \
            - self._lists_fetched_at

    def _check_degraded(self) -> None:
        """Fail closed past the grace window.

        In degraded mode the router serves its last-known lists only
        while they are younger than ``staleness_grace``; after that it
        refuses to authenticate anyone rather than act on lists it
        knows are stale.  Revoked routers never take this path -- their
        stale service *is* the behaviour under test in E7.
        """
        if not self.degraded:
            return
        age = self.lists_age()
        if age > self.staleness_grace:
            obs.counter("router.degraded_refusals_total")
            raise DegradedModeError(
                f"router {self.router_id} degraded: operator channel "
                f"down and lists are {age:.0f}s old "
                f"(grace {self.staleness_grace:.0f}s)")

    def adopt_new_epoch(self) -> None:
        """Pick up a rotated gpk plus fresh lists over the NO channel."""
        if self._cut_off:
            return
        self.engine.gpk = self.operator.gpk
        self.refresh_lists()

    @property
    def crl(self) -> CertificateRevocationList:
        return self._crl

    @property
    def url(self) -> UserRevocationList:
        return self._url

    # -- protocol passthroughs ------------------------------------------------

    def make_beacon(self) -> Beacon:
        """Broadcast (M.1); refuses past the degraded-mode grace window."""
        self._check_degraded()
        return self.engine.make_beacon()

    def process_request(self, request: AccessRequest
                        ) -> Tuple[AccessConfirm, SecureSession]:
        """Handle (M.2) -> (M.3); raises on any validation failure."""
        self._check_degraded()
        if self.engine.dos_policy is not None:
            self.engine.dos_policy.note_request(self.clock.now())
        return self.engine.process_request(request)

    def process_request_batch(self, requests: "list[AccessRequest]",
                              pool: "Optional[VerifierPool]" = None,
                              traces: "Optional[list]" = None
                              ) -> "list[object]":
        """Handle a burst of (M.2) messages through batch verification.

        Each request still counts toward the DoS policy's arrival rate;
        outcomes mirror :meth:`RouterAuthEngine.process_requests`.
        ``pool`` opts the group-signature verification into a
        :class:`~repro.core.verifier_pool.VerifierPool`; a pool whose
        snapshot no longer matches this router's URL is ignored.
        ``traces`` carries one optional
        :class:`~repro.obs.spans.TraceContext` per request for
        per-handshake span stitching on the pool path.
        """
        self._check_degraded()
        if self.engine.dos_policy is not None:
            now = self.clock.now()
            for _ in requests:
                self.engine.dos_policy.note_request(now)
        return self.engine.process_requests(requests, pool=pool,
                                            traces=traces)

    def expire(self, now: Optional[float] = None) -> None:
        """Expiry tick: prune the engine's outstanding beacons and
        completed-handshake cache (see :meth:`RouterAuthEngine.expire`)."""
        self.engine.expire(now)

    def session(self, session_id: bytes) -> SecureSession:
        try:
            return self.engine.sessions[session_id]
        except KeyError as exc:
            raise SimulationError(
                f"router {self.router_id} has no session "
                f"{session_id.hex()[:8]}") from exc

    @property
    def auth_log(self):
        """The network log consulted by NO's audit protocol."""
        return self.engine.log

    @property
    def stats(self):
        return self.engine.stats

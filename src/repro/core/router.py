"""Mesh routers *MR_k* (Sections III.A, IV.B).

A mesh router broadcasts beacons, runs the router side of the
user-router handshake, maintains its session table and authentication
log (the audit trail), and periodically refreshes the CRL / URL from NO
over their pre-established secure channel.

The refresh model matters for experiment E7: a *revoked* router keeps
serving its last-fetched CRL, which goes stale after one update period
-- precisely the paper's bound on the phishing window.

Two distinct ways a router stops getting fresh lists:

* **Revocation** (:meth:`MeshRouter.sever_operator_channel`): NO cut
  the router off on purpose.  The router keeps serving its stale lists
  indefinitely -- that *is* the adversarial behaviour E7 measures.
* **Channel loss** (:meth:`MeshRouter.set_operator_channel`): an honest
  router lost its backhaul (fiber cut, NO outage).  It enters *degraded
  mode*: it keeps serving its last-known CRL/URL while they are younger
  than ``staleness_grace`` seconds, then refuses service with
  :class:`~repro.errors.DegradedModeError` rather than authenticate
  against lists it knows are stale.  Restoring the channel refreshes
  immediately and clears the degradation.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

from repro import obs
from repro.core.certs import (
    CertificateRevocationList,
    CrlDelta,
    RouterCertificate,
    UrlDelta,
    UserRevocationList,
)
from repro.core.durable import DurableRouterStore, DurableState, RecoveryInfo
from repro.core.groupsig import GroupPublicKey
from repro.core.revocation import (
    RevocationState,
    RevocationTagCache,
    TagCheckpoint,
)
from repro.core.clock import Clock, SystemClock
from repro.core.messages import AccessConfirm, AccessRequest, Beacon
from repro.core.operator_entity import NetworkOperator
from repro.core.protocols.dos import DosPolicy
from repro.core.protocols.session import SecureSession
from repro.core.protocols.user_router import RouterAuthEngine
from repro.errors import (
    CertificateError,
    DegradedModeError,
    EncodingError,
    SimulationError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.verifier_pool import VerifierPool


class MeshRouter:
    """One mesh router, provisioned by ``operator``."""

    #: How many past CRL/URL versions this router can serve as deltas.
    max_list_history = 16

    def __init__(self, router_id: str, operator: NetworkOperator,
                 clock: Optional[Clock] = None,
                 rng: Optional[random.Random] = None,
                 cert_validity: float = 30 * 86400.0,
                 dos_policy: Optional[DosPolicy] = None,
                 staleness_grace: float = 600.0,
                 provisioned: Optional[Tuple] = None,
                 initial_lists: Optional[Tuple] = None,
                 channel_up: bool = True) -> None:
        self.router_id = router_id
        self.operator = operator
        self.clock = clock or SystemClock()
        self.rng = rng or random.Random()
        if provisioned is not None:
            # Restart path: keep the credentials NO already issued (and
            # consume no operator randomness -- see ``restore``).
            keypair, certificate = provisioned
        else:
            keypair, certificate = operator.provision_router(
                router_id, validity=cert_validity)
        self.keypair = keypair
        self.certificate: RouterCertificate = certificate
        if initial_lists is not None:
            # Restart path: the journaled lists, not a fresh NO fetch
            # (a partitioned router cannot reach NO at boot).
            self._crl, self._url, fetched_at = initial_lists
        else:
            self._crl = operator.issue_crl()
            self._url = operator.issue_url()
            fetched_at = self.clock.now()
        self._cut_off = False   # set when NO severs the secure channel
        self.staleness_grace = staleness_grace
        self._channel_up = channel_up    # honest backhaul state
        self._refresh_silent_failure = False   # chaos: refreshes no-op
        self._lists_fetched_at = fetched_at
        self._durable: Optional[DurableRouterStore] = None
        #: Set by :meth:`restore` -- what the journal recovery found.
        self.recovery: Optional[RecoveryInfo] = None
        self.engine = RouterAuthEngine(
            router_id=router_id, keypair=keypair, certificate=certificate,
            gpk=operator.gpk, crl_provider=lambda: self._crl,
            url_provider=lambda: self._url, clock=self.clock, rng=self.rng,
            dos_policy=dos_policy)
        # Bounded history of adopted list versions, so this router can
        # serve *deltas* to gossip peers that are only a few versions
        # behind (anything older gets the full signed list).
        self._crl_history: "OrderedDict[int, CertificateRevocationList]" \
            = OrderedDict()
        self._url_history: "OrderedDict[int, UserRevocationList]" \
            = OrderedDict()
        self._record_history()
        #: Sharded fast-revocation state; ``None`` keeps the default
        #: linear-scan verification path untouched.
        self.revocation_state: Optional[RevocationState] = None

    # -- list refresh over the NO secure channel ------------------------------

    def refresh_lists(self) -> None:
        """Periodic CRL/URL update; fails silently once NO cut us off
        (a revoked router can no longer obtain fresh lists) and while
        the backhaul channel is down (an honest router cannot reach
        NO)."""
        if self._cut_off or not self._channel_up:
            return
        if self._refresh_silent_failure:   # chaos: stale_lists fault
            obs.counter("router.refresh_suppressed_total")
            return
        with obs.timer("router.list_refresh_seconds"):
            self._crl = self.operator.issue_crl()
            self._url = self.operator.issue_url()
        self._lists_fetched_at = self.clock.now()
        self._record_history()
        self._sync_revocation_state()
        self._journal_lists()
        obs.counter("router.list_refresh_total")

    def _record_history(self) -> None:
        for history, current in ((self._crl_history, self._crl),
                                 (self._url_history, self._url)):
            history[current.version] = current
            history.move_to_end(current.version)
            while len(history) > self.max_list_history:
                history.popitem(last=False)

    def sever_operator_channel(self) -> None:
        """Called when NO revokes this router: no more fresh lists."""
        self._cut_off = True
        if self._durable is not None:
            self._durable.record_channel(self._channel_up, self._cut_off)

    # -- degraded mode (honest channel loss, NOT revocation) ------------------

    def set_operator_channel(self, up: bool) -> None:
        """Flip the honest backhaul channel to NO.

        Going down puts the router in *degraded mode*; coming back up
        refreshes the lists immediately and clears the degradation.  A
        revoked router (:meth:`sever_operator_channel`) is exempt:
        revocation is permanent and keeps the E7 stale-list behaviour.
        """
        if self._cut_off:
            return
        if up and not self._channel_up:
            self._channel_up = True
            obs.counter("router.channel_restored_total")
            if self._durable is not None:
                self._durable.record_channel(self._channel_up,
                                             self._cut_off)
            self.refresh_lists()
        elif not up and self._channel_up:
            self._channel_up = False
            obs.counter("router.channel_severed_total")
            if self._durable is not None:
                self._durable.record_channel(self._channel_up,
                                             self._cut_off)

    def set_refresh_silent_failure(self, failing: bool) -> None:
        """Chaos hook: make :meth:`refresh_lists` silently do nothing,
        leaving the router to serve ever-staler lists without knowing."""
        self._refresh_silent_failure = failing

    @property
    def degraded(self) -> bool:
        """True while an honest router has no channel to NO."""
        return not self._channel_up and not self._cut_off

    def lists_age(self, now: Optional[float] = None) -> float:
        """Seconds since the CRL/URL were last fetched from NO."""
        return (self.clock.now() if now is None else now) \
            - self._lists_fetched_at

    def _check_degraded(self) -> None:
        """Fail closed past the grace window.

        In degraded mode the router serves its last-known lists only
        while they are younger than ``staleness_grace``; after that it
        refuses to authenticate anyone rather than act on lists it
        knows are stale.  Revoked routers never take this path -- their
        stale service *is* the behaviour under test in E7.
        """
        if not self.degraded:
            return
        age = self.lists_age()
        if age > self.staleness_grace:
            obs.counter("router.degraded_refusals_total")
            raise DegradedModeError(
                f"router {self.router_id} degraded: operator channel "
                f"down and lists are {age:.0f}s old "
                f"(grace {self.staleness_grace:.0f}s)")

    def adopt_new_epoch(self) -> None:
        """Pick up a rotated gpk plus fresh lists over the NO channel."""
        if self._cut_off:
            return
        self.engine.gpk = self.operator.gpk
        self.refresh_lists()
        # The backhaul may be down; the state must still follow the gpk
        # the engine now verifies under (refresh_lists syncs only when
        # it actually fetched).
        self._sync_revocation_state()
        if self._durable is not None:
            self._durable.record_epoch(
                self.engine.gpk.epoch, self.engine.gpk.encode(),
                self._crl.encode(), self._url.encode(),
                self._lists_fetched_at)
            self._journal_checkpoint()

    # -- sharded fast revocation ----------------------------------------------

    def enable_sharded_revocation(self, num_shards: int = 16,
                                  cache: Optional[RevocationTagCache] = None,
                                  warm_checkpoint: Optional[TagCheckpoint]
                                  = None) -> RevocationState:
        """Opt this router into the sharded epoch-tag revocation path.

        Builds a :class:`~repro.core.revocation.RevocationState` over
        the current URL and threads it (plus the epoch period) into the
        auth engine: handshakes verify SPK correctness as usual, then
        run the O(1) shard check instead of the linear Eq.3 scan.
        Users must sign under the same epoch period (see
        ``NetworkUser.auth_period``); outcomes are bit-identical to the
        serial scan.  ``cache`` may be shared across routers.

        ``warm_checkpoint`` pre-warms the cache from a peer's signed
        :class:`~repro.core.revocation.TagCheckpoint` *before* the
        first shard build, so a cold router skips the per-token pairing
        re-derivation entirely (verified exactly like a gossiped
        checkpoint; tampering raises ``CertificateError`` and the build
        falls back to full re-derivation).
        """
        state = RevocationState(self.engine.gpk, num_shards=num_shards,
                                cache=cache)
        self.revocation_state = state
        self.engine.revocation_state = state
        self.engine.auth_period = state.period
        if warm_checkpoint is not None:
            try:
                self.adopt_tag_checkpoint(warm_checkpoint)
            except CertificateError:
                # Full re-derive fallback: the update below pays the
                # pairings a valid checkpoint would have saved.
                pass
        state.update(self._url.tokens, self._url.version)
        self._journal_checkpoint()
        return state

    def _sync_revocation_state(self) -> None:
        """Re-shard after any list or epoch change (no-op when off)."""
        state = self.revocation_state
        if state is None:
            return
        if state.epoch != self.engine.gpk.epoch:
            state.rotate(self.engine.gpk, self._url.tokens,
                         self._url.version)
            self.engine.auth_period = state.period
        elif state.url_version != self._url.version:
            state.update(self._url.tokens, self._url.version)

    # -- epidemic (router-to-router) list distribution ------------------------

    def list_versions(self) -> Tuple[int, int]:
        """The anti-entropy digest: ``(crl_version, url_version)``."""
        return (self._crl.version, self._url.version)

    def adopt_lists(self, crl: Optional[CertificateRevocationList] = None,
                    url: Optional[UserRevocationList] = None) -> bool:
        """Adopt gossiped lists; the epidemic-distribution sink.

        Every candidate must carry a valid NO signature and advance the
        version this router holds (freshness is governed separately by
        the degraded-mode clockwork, so an old-but-authentic list from
        a peer is acceptable while it advances us).  A revoked router
        (``_cut_off``) refuses adoption outright: its stale lists are
        the E7 behaviour under test, and gossip must not launder fresh
        lists into it.  Successful adoption re-dates the lists to
        ``min(now, issued_at)`` so a degraded router healed by gossip
        counts staleness from the lists' real issue time.
        """
        if self._cut_off:
            return False
        now = self.clock.now()
        adopted = False
        if crl is not None and crl.version > self._crl.version:
            crl.validate(self.operator.public_key, now,
                         max_staleness=float("inf"))
            self._crl = crl
            adopted = True
        if url is not None and url.version > self._url.version:
            url.validate(self.operator.public_key, now,
                         max_staleness=float("inf"))
            self._url = url
            adopted = True
        if adopted:
            self._lists_fetched_at = min(
                now, min(self._crl.issued_at, self._url.issued_at))
            self._record_history()
            self._sync_revocation_state()
            self._journal_lists()
            obs.counter("router.gossip_adopted_total")
        return adopted

    def crl_delta_for(self, peer_version: int) -> Optional[CrlDelta]:
        """Delta lifting a peer from ``peer_version`` to this CRL.

        Requires the peer's version in this router's bounded history
        (to know exactly what the peer holds); otherwise ``None`` and
        the peer gets the full signed list.  The delta reuses NO's
        signature over this router's current list, so the peer's
        reconstruction validates like any published CRL.
        """
        base = self._crl_history.get(peer_version)
        if base is None or peer_version >= self._crl.version:
            return None
        current = self._crl
        return CrlDelta(
            from_version=peer_version, to_version=current.version,
            issued_at=current.issued_at,
            update_period=current.update_period,
            added=tuple(sorted(current.revoked_router_ids
                               - base.revoked_router_ids)),
            removed=tuple(sorted(base.revoked_router_ids
                                 - current.revoked_router_ids)),
            list_signature=current.signature)

    def url_delta_for(self, peer_version: int) -> Optional[UrlDelta]:
        """Delta lifting a peer from ``peer_version`` to this URL."""
        base = self._url_history.get(peer_version)
        if base is None or peer_version >= self._url.version:
            return None
        current = self._url
        base_encodings = {token.encode() for token in base.tokens}
        current_encodings = {token.encode() for token in current.tokens}
        return UrlDelta(
            from_version=peer_version, to_version=current.version,
            issued_at=current.issued_at,
            update_period=current.update_period,
            added=tuple(token for token in current.tokens
                        if token.encode() not in base_encodings),
            removed=tuple(sorted(base_encodings - current_encodings)),
            list_signature=current.signature)

    @property
    def crl(self) -> CertificateRevocationList:
        return self._crl

    @property
    def url(self) -> UserRevocationList:
        return self._url

    # -- shard-checkpoint gossip ----------------------------------------------

    def make_tag_checkpoint(self) -> Optional[TagCheckpoint]:
        """Export this router's warm epoch tags, signed with RPK/RSK.

        ``None`` when there is nothing trustworthy to serve: the
        sharded path is off, no shard build happened yet, or NO cut
        this router off (a revoked router must not seed peers' caches
        any more than it may adopt their lists -- E7).
        """
        state = self.revocation_state
        if self._cut_off or state is None or state.sharded is None:
            return None
        entries = tuple((entry.token.encode(), entry.tag)
                        for shard in state.sharded.shards
                        for entry in shard)
        unsigned = TagCheckpoint(
            router_id=self.router_id, epoch=state.epoch,
            url_version=state.url_version,
            num_shards=state.num_shards, entries=entries,
            certificate=self.certificate.encode(), signature=b"")
        signature = self.keypair.sign(unsigned.signed_payload())
        obs.counter("gossip.checkpoint.served")
        return TagCheckpoint(
            router_id=unsigned.router_id, epoch=unsigned.epoch,
            url_version=unsigned.url_version,
            num_shards=unsigned.num_shards, entries=unsigned.entries,
            certificate=unsigned.certificate, signature=signature)

    def _reject_checkpoint(self, reason: str) -> None:
        obs.counter("gossip.checkpoint.rejected")
        raise CertificateError(reason)

    def adopt_tag_checkpoint(self, checkpoint: TagCheckpoint) -> int:
        """Warm the tag cache from a peer's signed checkpoint.

        Verification chain: the embedded ``Cert_k`` must decode,
        validate against NO's key, name the claimed serving router, and
        that router must not be on this router's CRL; the ECDSA
        signature must cover the exact entry set.  Any failure raises
        :class:`~repro.errors.CertificateError` (and bumps
        ``gossip.checkpoint.rejected``) -- the caller falls back to
        full tag re-derivation.  A ``_cut_off`` router adopts nothing.
        Returns the number of tags adopted (0 when the checkpoint is
        authentic but for another epoch, or sharding is off here).
        """
        if self._cut_off:
            return 0
        try:
            cert = RouterCertificate.decode(
                self.operator.curve, checkpoint.certificate)
        except EncodingError:
            self._reject_checkpoint(
                f"checkpoint from {checkpoint.router_id!r}: certificate "
                "does not decode")
        try:
            cert.validate(self.operator.public_key, self.clock.now())
        except CertificateError:
            obs.counter("gossip.checkpoint.rejected")
            raise
        if cert.router_id != checkpoint.router_id:
            self._reject_checkpoint(
                f"checkpoint claims {checkpoint.router_id!r} but its "
                f"certificate names {cert.router_id!r}")
        if self._crl.is_revoked(cert.router_id):
            self._reject_checkpoint(
                f"checkpoint from revoked router {cert.router_id!r}")
        if not cert.public_key.verify(checkpoint.signed_payload(),
                                      checkpoint.signature):
            self._reject_checkpoint(
                f"checkpoint from {checkpoint.router_id!r} has a bad "
                "signature")
        state = self.revocation_state
        if state is None or checkpoint.epoch != state.epoch:
            obs.counter("gossip.checkpoint.ignored")
            return 0
        for token_encoding, tag in checkpoint.entries:
            state.cache.put(checkpoint.epoch, token_encoding, tag)
        obs.counter("gossip.checkpoint.adopted")
        obs.counter("gossip.checkpoint.tags_adopted",
                    len(checkpoint.entries))
        return len(checkpoint.entries)

    def tag_warm_fraction(self) -> float:
        """Fraction of this URL's tags already cached for this epoch
        (counter-free; used to decide whether a peer checkpoint is
        worth offering)."""
        state = self.revocation_state
        if state is None or not self._url.tokens:
            return 1.0
        warm = sum(1 for token in self._url.tokens
                   if state.cache.contains(state.epoch, token.encode()))
        return warm / len(self._url.tokens)

    # -- durable state --------------------------------------------------------

    def attach_durable(self, store: DurableRouterStore,
                       record_initial: bool = True) -> None:
        """Journal this router's security state into ``store``.

        With ``record_initial`` the store is reset to one snapshot of
        the state as of now; a :meth:`restore`-d router passes False to
        keep appending to the journal it just recovered from.
        """
        self._durable = store
        if record_initial:
            store.initialize(self._capture_state())

    def _capture_state(self) -> DurableState:
        state = self.revocation_state
        num_shards = 0
        tag_epoch = self.engine.gpk.epoch
        entries: Tuple[Tuple[bytes, bytes], ...] = ()
        if state is not None and state.sharded is not None:
            num_shards = state.num_shards
            tag_epoch = state.epoch
            entries = tuple((entry.token.encode(), entry.tag)
                            for shard in state.sharded.shards
                            for entry in shard)
        return DurableState(
            store_id=self.router_id, epoch=self.engine.gpk.epoch,
            gpk_blob=self.engine.gpk.encode(),
            crl_blob=self._crl.encode(), url_blob=self._url.encode(),
            lists_fetched_at=self._lists_fetched_at,
            channel_up=self._channel_up, cut_off=self._cut_off,
            num_shards=num_shards, tag_epoch=tag_epoch,
            tag_entries=entries)

    def _journal_lists(self) -> None:
        if self._durable is None:
            return
        self._durable.record_lists(self._crl.encode(), self._url.encode(),
                                   self._lists_fetched_at)
        self._journal_checkpoint()

    def _journal_checkpoint(self) -> None:
        """Persist the current shard tags so a local restart warms its
        cache from disk without peers (no-op when sharding is off)."""
        if self._durable is None:
            return
        state = self.revocation_state
        if state is None or state.sharded is None:
            return
        entries = tuple((entry.token.encode(), entry.tag)
                        for shard in state.sharded.shards
                        for entry in shard)
        self._durable.record_checkpoint(state.epoch, state.num_shards,
                                        entries)

    @classmethod
    def restore(cls, store: DurableRouterStore, operator: NetworkOperator,
                clock: Optional[Clock] = None,
                rng: Optional[random.Random] = None,
                dos_policy: Optional[DosPolicy] = None,
                staleness_grace: float = 600.0,
                cache: Optional[RevocationTagCache] = None
                ) -> "MeshRouter":
        """Rebuild a router from its journal after a crash.

        Recovery semantics:

        * Credentials come from :meth:`NetworkOperator
          .reprovision_router` -- same RPK/RSK and ``Cert_k``, no
          operator randomness consumed.
        * Lists, epoch, and channel state come from the journal, NOT a
          fresh NO fetch: a partitioned router reboots into degraded
          mode and re-enters the refusal path once its recovered lists
          age past ``staleness_grace``.
        * If the journal carried shard checkpoints, the sharded path is
          re-enabled with the cache pre-warmed from them (zero pairing
          re-derivation for journaled tags).
        * The recovered journal is re-attached, so post-restart changes
          keep appending where the crash left off.
        """
        with obs.span("recovery.restore"):
            info = store.load()
            state = info.state
            crl = CertificateRevocationList.decode(state.crl_blob)
            url = UserRevocationList.decode(operator.group, state.url_blob)
            router = cls(
                store.store_id, operator, clock=clock, rng=rng,
                dos_policy=dos_policy, staleness_grace=staleness_grace,
                provisioned=operator.reprovision_router(store.store_id),
                initial_lists=(crl, url, state.lists_fetched_at),
                channel_up=state.channel_up)
            if state.cut_off:
                router._cut_off = True
            # The journaled gpk, not NO's current one: an epoch
            # rotation that happened while this router was down must
            # reach it through adopt_new_epoch / gossip, exactly as if
            # it had merely been partitioned.  (GroupPublicKey wire
            # encoding drops the epoch; re-stamp it from the journal.)
            if (state.epoch != operator.gpk.epoch
                    or state.gpk_blob != operator.gpk.encode()):
                gpk = GroupPublicKey.decode(operator.group, state.gpk_blob)
                router.engine.gpk = GroupPublicKey(
                    gpk.group, gpk.w, epoch=state.epoch)
            if state.num_shards:
                warm_cache = cache if cache is not None \
                    else RevocationTagCache()
                for token_encoding, tag in state.tag_entries:
                    warm_cache.put(state.tag_epoch, token_encoding, tag)
                router.enable_sharded_revocation(
                    num_shards=state.num_shards, cache=warm_cache)
            router.attach_durable(store, record_initial=False)
            router.recovery = info
        obs.counter("recovery.restores_total")
        if not info.clean:
            obs.counter("recovery.torn_tail_total")
        return router

    # -- protocol passthroughs ------------------------------------------------

    def make_beacon(self) -> Beacon:
        """Broadcast (M.1); refuses past the degraded-mode grace window."""
        self._check_degraded()
        return self.engine.make_beacon()

    def process_request(self, request: AccessRequest
                        ) -> Tuple[AccessConfirm, SecureSession]:
        """Handle (M.2) -> (M.3); raises on any validation failure."""
        self._check_degraded()
        if self.engine.dos_policy is not None:
            self.engine.dos_policy.note_request(self.clock.now())
        return self.engine.process_request(request)

    def process_request_batch(self, requests: "list[AccessRequest]",
                              pool: "Optional[VerifierPool]" = None,
                              traces: "Optional[list]" = None
                              ) -> "list[object]":
        """Handle a burst of (M.2) messages through batch verification.

        Each request still counts toward the DoS policy's arrival rate;
        outcomes mirror :meth:`RouterAuthEngine.process_requests`.
        ``pool`` opts the group-signature verification into a
        :class:`~repro.core.verifier_pool.VerifierPool`; a pool whose
        snapshot no longer matches this router's URL is ignored.
        ``traces`` carries one optional
        :class:`~repro.obs.spans.TraceContext` per request for
        per-handshake span stitching on the pool path.
        """
        self._check_degraded()
        if self.engine.dos_policy is not None:
            now = self.clock.now()
            for _ in requests:
                self.engine.dos_policy.note_request(now)
        return self.engine.process_requests(requests, pool=pool,
                                            traces=traces)

    def expire(self, now: Optional[float] = None) -> None:
        """Expiry tick: prune the engine's outstanding beacons and
        completed-handshake cache (see :meth:`RouterAuthEngine.expire`)."""
        self.engine.expire(now)

    def session(self, session_id: bytes) -> SecureSession:
        try:
            return self.engine.sessions[session_id]
        except KeyError as exc:
            raise SimulationError(
                f"router {self.router_id} has no session "
                f"{session_id.hex()[:8]}") from exc

    @property
    def auth_log(self):
        """The network log consulted by NO's audit protocol."""
        return self.engine.log

    @property
    def stats(self):
        return self.engine.stats

"""One-call PEACE deployment builder.

Wires up a complete system -- network operator, TTP, group managers,
enrolled users, provisioned mesh routers -- the way the paper's setup
section describes, so examples, tests, and benchmarks don't repeat the
ceremony.  Everything is deterministic given ``seed``.

Example:

    deployment = Deployment.build(
        preset="TEST", seed=7,
        groups={"Company X": 8, "University Z": 8},
        users=[("alice", ["Company X"]), ("bob", ["University Z"])],
        routers=["MR-1", "MR-2"])
    beacon = deployment.routers["MR-1"].make_beacon()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.audit import LawAuthority, NetworkLog
from repro.core.clock import Clock, ManualClock
from repro.core.group_manager import GroupManager
from repro.core.identity import RoleAttribute, UserIdentity
from repro.core.operator_entity import NetworkOperator
from repro.core.protocols.dos import DosPolicy
from repro.core.router import MeshRouter
from repro.core.ttp import TrustedThirdParty
from repro.core.user import NetworkUser
from repro.pairing.group import PairingGroup


_DEFAULT_ROLES = {"Company X": "engineer", "University Z": "student",
                  "Apartment Y": "tenant", "Golf Club V": "member"}


def _role_for(group_name: str) -> str:
    return _DEFAULT_ROLES.get(group_name, "member")


@dataclass
class Deployment:
    """A fully wired PEACE system."""

    group: PairingGroup
    clock: Clock
    rng: random.Random
    operator: NetworkOperator
    ttp: TrustedThirdParty
    gms: Dict[str, GroupManager]
    users: Dict[str, NetworkUser]
    routers: Dict[str, MeshRouter]
    law_authority: LawAuthority = field(default_factory=LawAuthority)
    network_log: NetworkLog = field(default_factory=NetworkLog)

    @classmethod
    def build(cls, preset: str = "TEST", seed: int = 0,
              groups: Optional[Dict[str, int]] = None,
              users: Optional[Sequence[Tuple[str, Sequence[str]]]] = None,
              routers: Optional[Sequence[str]] = None,
              clock: Optional[Clock] = None,
              dos_policy_factory=None) -> "Deployment":
        """Construct and fully enroll a deployment.

        Args:
            preset: pairing parameter preset name.
            seed: master seed; everything downstream is derived from it.
            groups: user-group name -> initial key-pool size.
            users: (user name, [group names]) pairs; each user is given
                an identity with matching role attributes and enrolled
                in every listed group.
            routers: router ids to provision.
            clock: shared time source (ManualClock(0) by default).
            dos_policy_factory: optional ``() -> DosPolicy`` applied to
                every router.
        """
        groups = groups if groups is not None else {"Company X": 8}
        users = users if users is not None else [
            ("alice", ["Company X"]), ("bob", ["Company X"])]
        routers = routers if routers is not None else ["MR-1"]
        clock = clock or ManualClock(1_000_000.0)
        rng = random.Random(seed)

        pairing_group = PairingGroup(preset)
        operator = NetworkOperator(pairing_group, clock=clock, rng=rng)
        ttp = TrustedThirdParty(rng=rng)

        gms: Dict[str, GroupManager] = {}
        for name, pool_size in groups.items():
            gm = GroupManager(name, rng=rng)
            gm_bundle, ttp_bundle = operator.register_user_group(
                name, pool_size)
            receipt = gm.accept_bundle(gm_bundle, operator.public_key)
            operator.record_gm_receipt(name, receipt, gm.public_key,
                                       gm_bundle)
            ttp.store_bundle(ttp_bundle, operator.public_key)
            gms[name] = gm

        built_users: Dict[str, NetworkUser] = {}
        for user_name, memberships in users:
            identity = UserIdentity.build(
                name=user_name,
                essential={"ssn": f"{rng.randrange(10**9):09d}",
                           "name": user_name},
                roles=[RoleAttribute(_role_for(g), g) for g in memberships])
            user = NetworkUser(identity, operator.gpk,
                               operator.public_key, clock=clock, rng=rng)
            for group_name in memberships:
                user.enroll_with(gms[group_name], ttp)
            built_users[user_name] = user

        built_routers: Dict[str, MeshRouter] = {}
        for router_id in routers:
            policy = dos_policy_factory() if dos_policy_factory else None
            built_routers[router_id] = MeshRouter(
                router_id, operator, clock=clock, rng=rng,
                dos_policy=policy)

        return cls(group=pairing_group, clock=clock, rng=rng,
                   operator=operator, ttp=ttp, gms=gms, users=built_users,
                   routers=built_routers)

    # -- membership renewal ------------------------------------------------

    def rotate_epoch(self, exclude: Sequence[str] = ()) -> None:
        """Run the 'group public key update' renewal end to end.

        NO rotates gamma/gpk and reissues every group's pool; GMs adopt
        the new bundles (archiving old assignments for historical
        tracing); the TTP stores the fresh blinded shares; every user
        NOT in ``exclude`` re-enrolls in all their groups; routers
        adopt the new gpk.  Users in ``exclude`` are left without any
        usable credential -- the paper's revocation case (i): "they do
        not have any group private key currently in use due to group
        public key update".
        """
        excluded = set(exclude)
        bundles = self.operator.rotate_system_keys()
        for name, (gm_bundle, ttp_bundle) in bundles.items():
            gm = self.gms[name]
            receipt = gm.begin_epoch(gm_bundle, self.operator.public_key)
            self.operator.record_gm_receipt(name, receipt, gm.public_key,
                                            gm_bundle)
            self.ttp.store_bundle(ttp_bundle, self.operator.public_key)
        for user_name, user in self.users.items():
            user.adopt_gpk(self.operator.gpk)
            if user_name in excluded:
                continue
            for role in sorted(user.identity.roles,
                               key=lambda r: r.entity):
                if role.entity in self.gms:
                    user.enroll_with(self.gms[role.entity], self.ttp)
        for router in self.routers.values():
            router.adopt_new_epoch()

    # -- conveniences used across tests / examples / benches ------------------

    def connect(self, user_name: str, router_id: str,
                context: Optional[str] = None):
        """Run the full user-router handshake; returns both sessions.

        Returns ``(user_session, router_session)``; also feeds the
        router's auth log into the deployment-wide network log.
        """
        user = self.users[user_name]
        router = self.routers[router_id]
        beacon = router.make_beacon()
        request, pending = user.connect_to_router(beacon, context)
        confirm, router_session = router.process_request(request)
        user_session = user.complete_router_handshake(pending, confirm)
        self.network_log.ingest(router.auth_log)
        return user_session, router_session

    def peer_connect(self, initiator_name: str, responder_name: str,
                     router_id: str,
                     initiator_context: Optional[str] = None,
                     responder_context: Optional[str] = None):
        """Run the full user-user handshake between two users."""
        router = self.routers[router_id]
        beacon = router.make_beacon()
        url = beacon.url
        initiator = self.users[initiator_name].peer_engine(initiator_context)
        responder = self.users[responder_name].peer_engine(responder_context)
        hello, pending_i = initiator.initiate(beacon.g)
        response, pending_r = responder.respond(hello, url)
        confirm, session_i = initiator.complete(pending_i, response, url)
        session_r = responder.finalize(pending_r, confirm)
        return session_i, session_r

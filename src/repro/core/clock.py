"""Time source abstraction.

Protocol freshness checks (timestamps ts1/ts2, CRL update periods,
certificate expiry) consult a :class:`Clock` rather than the wall clock
so the discrete-event simulator can drive protocol entities on virtual
time and tests are deterministic.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: anything with a ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time; the default outside the simulator."""

    def now(self) -> float:
        return time.time()


class ManualClock(Clock):
    """A settable clock for tests and the simulator."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self._now += delta
        return self._now

    def set(self, value: float) -> None:
        """Jump to an absolute time (monotonicity is the caller's duty)."""
        self._now = float(value)

"""Byte-accurate wire serialization helpers.

Every protocol message supports ``encode() -> bytes`` and a matching
``decode``; the benchmarks report ``len(encode())`` as the message's
over-the-air size, so framing must be canonical.  ``Writer``/``Reader``
implement a tiny fixed+varlen layout: fixed-width fields are written
raw, variable fields with a 4-byte big-endian length prefix.
"""

from __future__ import annotations

from typing import List

from repro.errors import EncodingError


class Writer:
    """Accumulate a canonical byte encoding."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def raw(self, data: bytes) -> "Writer":
        """Append fixed-width bytes verbatim."""
        self._parts.append(bytes(data))
        return self

    def u8(self, value: int) -> "Writer":
        return self.raw(value.to_bytes(1, "big"))

    def u32(self, value: int) -> "Writer":
        return self.raw(value.to_bytes(4, "big"))

    def u64(self, value: int) -> "Writer":
        return self.raw(value.to_bytes(8, "big"))

    def f64(self, value: float) -> "Writer":
        """Timestamps travel as milliseconds in a u64."""
        return self.u64(int(round(value * 1000)) & ((1 << 64) - 1))

    def var(self, data: bytes) -> "Writer":
        """Append a length-prefixed variable field."""
        self.u32(len(data))
        return self.raw(data)

    def string(self, text: str) -> "Writer":
        return self.var(text.encode("utf-8"))

    def done(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Consume a canonical byte encoding; raises on truncation."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def raw(self, width: int) -> bytes:
        end = self._offset + width
        if end > len(self._data):
            raise EncodingError("truncated message")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return self.raw(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self.raw(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self.raw(8), "big")

    def f64(self) -> float:
        return self.u64() / 1000.0

    def var(self) -> bytes:
        return self.raw(self.u32())

    def string(self) -> str:
        try:
            return self.var().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EncodingError("string field is not valid UTF-8") from exc

    def expect_end(self) -> None:
        if self._offset != len(self._data):
            raise EncodingError(
                f"{len(self._data) - self._offset} trailing bytes")

    def remaining(self) -> int:
        return len(self._data) - self._offset

"""Byte-accurate wire serialization helpers.

Every protocol message supports ``encode() -> bytes`` and a matching
``decode``; the benchmarks report ``len(encode())`` as the message's
over-the-air size, so framing must be canonical.  ``Writer``/``Reader``
implement a tiny fixed+varlen layout: fixed-width fields are written
raw, variable fields with a 4-byte big-endian length prefix.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import EncodingError

#: Maximum encodable timestamp, seconds: the millisecond count must fit
#: a u64.  (That is ~584 million years past the epoch; the bound exists
#: so the range check below is canonical, not because it is reachable.)
MAX_TIMESTAMP = ((1 << 64) - 1) / 1000.0


def quantize_ts(value: float) -> float:
    """Round a timestamp to the wire's millisecond precision.

    ``Writer.f64``/``Reader.f64`` transport timestamps as integral
    milliseconds, so any float that travels the wire comes back as
    ``quantize_ts(value)``.  Protocol state that is later compared
    against wire-decoded timestamps (pending-handshake ``ts1``/``ts2``)
    must store this quantized form, or sub-millisecond residue can flip
    the sign of window checks like ``ts2 - ts1 >= 0``.
    """
    return int(round(value * 1000)) / 1000.0


class Writer:
    """Accumulate a canonical byte encoding."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def raw(self, data: bytes) -> "Writer":
        """Append fixed-width bytes verbatim."""
        self._parts.append(bytes(data))
        return self

    def _uint(self, value: int, width: int) -> "Writer":
        """Range-checked unsigned field; canonical big-endian bytes."""
        if not isinstance(value, int):
            raise EncodingError(
                f"u{width * 8} field requires an int, got "
                f"{type(value).__name__}")
        if value < 0 or value >> (8 * width):
            raise EncodingError(
                f"value {value} out of range for a u{width * 8} field")
        return self.raw(value.to_bytes(width, "big"))

    def u8(self, value: int) -> "Writer":
        return self._uint(value, 1)

    def u32(self, value: int) -> "Writer":
        return self._uint(value, 4)

    def u64(self, value: int) -> "Writer":
        return self._uint(value, 8)

    def f64(self, value: float) -> "Writer":
        """Timestamps travel as milliseconds in a u64.

        Negative and non-finite timestamps are rejected: masking a
        negative millisecond count into a u64 would silently round-trip
        ``-1.5`` as ``1.8446744073709548e+16`` and defeat every
        downstream freshness check.
        """
        if not math.isfinite(value):
            raise EncodingError(f"non-finite timestamp {value!r}")
        if value < 0:
            raise EncodingError(f"negative timestamp {value!r}")
        if value > MAX_TIMESTAMP:
            raise EncodingError(f"timestamp {value!r} overflows the wire")
        return self.u64(int(round(value * 1000)))

    def var(self, data: bytes) -> "Writer":
        """Append a length-prefixed variable field."""
        self.u32(len(data))
        return self.raw(data)

    def string(self, text: str) -> "Writer":
        return self.var(text.encode("utf-8"))

    def done(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Consume a canonical byte encoding; raises on truncation."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def raw(self, width: int) -> bytes:
        end = self._offset + width
        if end > len(self._data):
            raise EncodingError("truncated message")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return self.raw(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self.raw(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self.raw(8), "big")

    def f64(self) -> float:
        return self.u64() / 1000.0

    def var(self) -> bytes:
        return self.raw(self.u32())

    def string(self) -> str:
        try:
            return self.var().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EncodingError("string field is not valid UTF-8") from exc

    def expect_end(self) -> None:
        if self._offset != len(self._data):
            raise EncodingError(
                f"{len(self._data) - self._offset} trailing bytes")

    def remaining(self) -> int:
        return len(self._data) - self._offset

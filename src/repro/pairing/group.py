"""High-level (G1, G2, GT, psi, e) interface -- the API PEACE is written on.

The paper (and Boneh-Shacham) describe the scheme over an asymmetric
pairing with an efficiently computable isomorphism ``psi : G2 -> G1``.
This package instantiates a Type-1 (symmetric) pairing where G1 and G2
are the same subgroup of ``E(F_p)`` and ``psi`` is the identity; the two
element types are nevertheless kept distinct so the scheme code reads
exactly like the paper and could be retargeted to an asymmetric backend.

Group notation is multiplicative to match the paper: ``g ** a`` is
exponentiation, ``x * y`` the group operation.  Every exponentiation,
multi-exponentiation, ``psi`` application, and pairing reports itself to
:mod:`repro.instrument` so benchmarks can reproduce the paper's abstract
operation counts.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro import instrument
from repro.errors import EncodingError, ParameterError
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp2
from repro.pairing.hashing import (
    DOMAIN_G,
    hash_h0,
    hash_to_point,
    hash_to_scalar,
)
from repro.pairing.params import PairingParams, get_params
from repro.pairing.precompute import FixedBaseTable, PairingTable
from repro.pairing.tate import final_exponentiation, miller_loop, tate_pairing


class _GroupElement:
    """Shared behaviour of G1 and G2 elements (multiplicative notation)."""

    __slots__ = ("point", "group")

    def __init__(self, point: Point, group: "PairingGroup") -> None:
        self.point = point
        self.group = group

    def _wrap(self, point: Point) -> "_GroupElement":
        return type(self)(point, self.group)

    def __mul__(self, other: "_GroupElement") -> "_GroupElement":
        if type(other) is not type(self):
            raise ParameterError("group operation across G1/G2")
        return self._wrap(self.group.curve.add(self.point, other.point))

    def __truediv__(self, other: "_GroupElement") -> "_GroupElement":
        if type(other) is not type(self):
            raise ParameterError("group operation across G1/G2")
        return self._wrap(
            self.group.curve.add(self.point,
                                 self.group.curve.neg(other.point)))

    def __pow__(self, exponent: int) -> "_GroupElement":
        instrument.note("exp")
        return self._wrap(self.group.curve.mul(self.point, exponent))

    def inverse(self) -> "_GroupElement":
        return self._wrap(self.group.curve.neg(self.point))

    def is_identity(self) -> bool:
        return self.point.is_infinity()

    def encode(self) -> bytes:
        """Compressed serialization (tag byte + x coordinate)."""
        return self.group.curve.encode(self.point)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _GroupElement):
            return NotImplemented
        return type(self) is type(other) and self.point == other.point

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.point))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.encode().hex()[:16]}...)"


class G1Element(_GroupElement):
    """Element of G1."""

    __slots__ = ()


class G2Element(_GroupElement):
    """Element of G2 (same underlying subgroup in this Type-1 setting)."""

    __slots__ = ()


class GTElement:
    """Element of the target group GT (subgroup of F_p2*)."""

    __slots__ = ("value", "group")

    def __init__(self, value: Fp2, group: "PairingGroup") -> None:
        self.value = value
        self.group = group

    def __mul__(self, other: "GTElement") -> "GTElement":
        return GTElement(self.value * other.value, self.group)

    def __truediv__(self, other: "GTElement") -> "GTElement":
        return GTElement(self.value * other.value.inverse(), self.group)

    def __pow__(self, exponent: int) -> "GTElement":
        instrument.note("exp_gt")
        return GTElement(self.value ** (exponent % self.group.order),
                         self.group)

    def inverse(self) -> "GTElement":
        return GTElement(self.value.inverse(), self.group)

    def is_identity(self) -> bool:
        return self.value.is_one()

    def encode(self) -> bytes:
        """Serialize as two fixed-width F_p coefficients."""
        size = self.group.params.field_bytes
        return (self.value.a.to_bytes(size, "big")
                + self.value.b.to_bytes(size, "big"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GTElement):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("GT", self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GTElement({self.encode().hex()[:16]}...)"


class FixedBaseExp:
    """Precomputed exponentiation for a fixed base element.

    Wraps a :class:`FixedBaseTable` so that ``fixed.exp(k)`` returns the
    same element (and notes the same single "exp") as ``base ** k``,
    only faster.  Built via :meth:`PairingGroup.make_fixed_base`.
    """

    __slots__ = ("element", "_table")

    def __init__(self, element: _GroupElement, table: FixedBaseTable) -> None:
        self.element = element
        self._table = table

    def exp(self, exponent: int) -> _GroupElement:
        """Compute ``base ** exponent``; counted as one exponentiation."""
        instrument.note("exp")
        return type(self.element)(self._table.mul(exponent),
                                  self.element.group)


class PairingGroup:
    """Facade bundling parameters, generators, pairing, and hashing.

    Instances are cheap to construct and stateless apart from the frozen
    parameters; a single instance is typically shared by every entity of
    a PEACE deployment (it is part of the public system parameters).
    """

    def __init__(self, params: Union[str, PairingParams] = "SS512") -> None:
        if isinstance(params, str):
            params = get_params(params)
        self.params = params
        self.curve = Curve(params)
        self.order = params.r
        generator_point = hash_to_point(self.curve, DOMAIN_G, b"g2")
        if generator_point.is_infinity():  # pragma: no cover - measure-zero
            raise ParameterError("generator hashing produced infinity")
        self.g2 = G2Element(generator_point, self)
        self.g1 = self.psi(self.g2, count=False)

    # -- isomorphism ----------------------------------------------------

    def psi(self, element: G2Element, count: bool = True) -> G1Element:
        """The G2 -> G1 isomorphism (identity map in this Type-1 setting).

        Counted as one "psi" operation (priced like a G1 exponentiation
        by the paper) unless ``count=False``.
        """
        if count:
            instrument.note("psi")
        return G1Element(element.point, self)

    # -- pairing ----------------------------------------------------------

    def pair(self, lhs: G1Element, rhs: G2Element) -> GTElement:
        """Bilinear map ``e : G1 x G2 -> GT``."""
        instrument.note("pairing")
        return GTElement(tate_pairing(self.curve, lhs.point, rhs.point), self)

    def gt_identity(self) -> GTElement:
        return GTElement(Fp2.one(self.params.p), self)

    # -- precomputation (engine support) --------------------------------
    #
    # Tables trade memory for wall-clock time without changing any
    # result or any instrumented count: building a table is free in the
    # abstract cost model (it happens once per fixed system parameter),
    # while *using* one notes the same operation the naive path would.

    def make_pairing_table(self, element: _GroupElement) -> PairingTable:
        """Precompute Miller-loop lines for ``e(element, .)``.

        Because this Type-1 pairing is symmetric, the table also
        evaluates pairings written with ``element`` on the right-hand
        side.  Building the table is not an instrumented operation.
        """
        return PairingTable.build_fast(self.curve, element.point)

    def make_fixed_base(self, element: _GroupElement) -> FixedBaseExp:
        """Precompute a fixed-base exponentiation table for ``element``."""
        return FixedBaseExp(element,
                            FixedBaseTable(self.curve, element.point))

    def pair_with(self, table: PairingTable,
                  element: _GroupElement) -> GTElement:
        """Evaluate ``e(table.point, element)`` via stored lines.

        Counted as one pairing -- identical output and identical
        instrumented cost to :meth:`pair`, just faster.
        """
        instrument.note("pairing")
        return GTElement(table.pairing(element.point), self)

    def pair_product(self,
                     terms: Sequence[Tuple[Union[PairingTable, _GroupElement],
                                           _GroupElement]]) -> GTElement:
        """Compute ``prod e(lhs_i, rhs_i)`` sharing one final exponentiation.

        Each ``lhs`` may be a :class:`PairingTable` (stored lines) or a
        plain group element (naive Miller loop).  The final
        exponentiation is a homomorphism, so exponentiating the product
        of Miller values once equals the product of full pairings.  Each
        term is counted as one pairing: the shared tail is a wall-clock
        optimisation, not a change to the abstract algorithm.

        Degenerate terms (either side at infinity) pair to 1 without a
        Miller loop and are therefore *not* billed: only evaluated terms
        note a pairing.  (An earlier revision billed ``len(terms)``
        up front, over-counting batches containing identity elements;
        ``tests/test_batch_core.py`` pins the corrected convention.)
        """
        if not terms:
            raise ParameterError("pair_product of no terms")
        evaluated = [
            (lhs, rhs) for lhs, rhs in terms
            if not (lhs.point.is_infinity() or rhs.point.is_infinity())
        ]
        instrument.note("pairing", len(evaluated))
        accum = Fp2.one(self.params.p)
        for lhs, rhs in evaluated:
            if isinstance(lhs, PairingTable):
                accum = accum * lhs.miller(rhs.point)
            else:
                accum = accum * miller_loop(self.curve, lhs.point, rhs.point)
        return GTElement(final_exponentiation(self.curve, accum), self)

    def batch_pairing_check(
            self,
            checks: Sequence[Tuple[Sequence[Tuple[Union[PairingTable,
                                                        _GroupElement],
                                                  _GroupElement]],
                                   GTElement]],
            rng: Optional[random.Random] = None) -> bool:
        """Randomized small-exponent batching of pairing-product equations.

        ``checks`` is a sequence of ``(terms, expected)`` pairs, each
        asserting ``prod_j e(lhs_j, rhs_j) == expected`` (terms shaped
        exactly like :meth:`pair_product`).  Instead of evaluating every
        equation separately, the whole batch is folded into a single
        randomized product

            prod_i (prod_j m_ij) ^ delta_i  ==  prod_i expected_i ^ delta_i

        with fresh 64-bit nonzero exponents ``delta_i``: all Miller
        values accumulate into one running F_p2 product that pays a
        single final exponentiation.  Soundness is the standard
        small-exponent argument -- if any individual equation fails, the
        randomized combination holds with probability at most ``2^-64``
        over the ``delta_i``, so a forged member cannot hide behind
        another term cancelling its error (``tests/test_batch_core.py``
        constructs exactly that cancellation and checks it is caught).

        Billing follows the :meth:`pair_product` convention: one pairing
        per *evaluated* term plus one GT exponentiation per check (the
        ``delta_i`` power); the shared Miller accumulation and single
        final exponentiation are wall-clock optimisations only.

        Returns ``True`` when the randomized combination holds.  A
        ``False`` result says at least one equation is (overwhelmingly
        likely) false without localizing it -- callers bisect with
        smaller batches when they need the offender (see
        ``repro.core.groupsig.validate_member_keys_batch``).
        """
        if not checks:
            raise ParameterError("batch_pairing_check of no checks")
        rng = rng or random.SystemRandom()
        p = self.params.p
        evaluated = 0
        lhs_accum = Fp2.one(p)
        rhs_accum = Fp2.one(p)
        for terms, expected in checks:
            delta = rng.randrange(1, 1 << 64)
            product = Fp2.one(p)
            for lhs, rhs in terms:
                if lhs.point.is_infinity() or rhs.point.is_infinity():
                    continue             # degenerate term pairs to 1
                evaluated += 1
                if isinstance(lhs, PairingTable):
                    product = product * lhs.miller(rhs.point)
                else:
                    product = product * miller_loop(self.curve, lhs.point,
                                                    rhs.point)
            instrument.note("exp_gt")
            lhs_accum = lhs_accum * product ** delta
            rhs_accum = rhs_accum * expected.value ** delta
        instrument.note("pairing", evaluated)
        return final_exponentiation(self.curve, lhs_accum) == rhs_accum

    # -- scalars -----------------------------------------------------------

    def random_scalar(self, rng: Optional[random.Random] = None,
                      nonzero: bool = True) -> int:
        """Sample a scalar from Z_r (Z_r* when ``nonzero``)."""
        rng = rng or random.SystemRandom()
        low = 1 if nonzero else 0
        return rng.randrange(low, self.order)

    def hash_to_scalar(self, *parts: bytes) -> int:
        """The paper's ``H``: hash byte strings into Z_r."""
        return hash_to_scalar(self.order, _join(parts))

    # -- hashing to groups ----------------------------------------------

    def hash_to_g1(self, *parts: bytes) -> G1Element:
        instrument.note("hash_to_group")
        return G1Element(
            hash_to_point(self.curve, b"repro/peace/G1", _join(parts)), self)

    def hash_to_g2(self, *parts: bytes) -> G2Element:
        instrument.note("hash_to_group")
        return G2Element(
            hash_to_point(self.curve, b"repro/peace/G2", _join(parts)), self)

    def hash_h0(self, *parts: bytes) -> Tuple[G2Element, G2Element]:
        """The paper's ``H0``: hash to a pair ``(u_hat, v_hat)`` in G2^2."""
        instrument.note("hash_to_group", 2)
        u_hat, v_hat = hash_h0(self.curve, _join(parts))
        return G2Element(u_hat, self), G2Element(v_hat, self)

    # -- multi-exponentiation ----------------------------------------------

    def multi_exp(self, terms: Sequence[Tuple[_GroupElement, int]]):
        """Compute ``prod(base_i ** k_i)`` counted as ONE exponentiation.

        The paper (following Boneh-Shacham) prices a product of powers as
        a single multi-exponentiation; routing such products through this
        method makes the measured operation counts comparable.
        """
        if not terms:
            raise ParameterError("multi_exp of no terms")
        instrument.note("exp")
        kind = type(terms[0][0])
        pairs = []
        for base, exponent in terms:
            if type(base) is not kind:
                raise ParameterError("multi_exp across G1/G2")
            pairs.append((base.point, exponent))
        return kind(self.curve.multi_mul(pairs), self)

    # -- encoding ------------------------------------------------------------

    def encode_scalar(self, value: int) -> bytes:
        return (value % self.order).to_bytes(self.params.scalar_bytes, "big")

    def decode_scalar(self, data: bytes) -> int:
        if len(data) != self.params.scalar_bytes:
            raise EncodingError("bad scalar width")
        return int.from_bytes(data, "big") % self.order

    def decode_g1(self, data: bytes) -> G1Element:
        return G1Element(self.curve.decode(data), self)

    def decode_g2(self, data: bytes) -> G2Element:
        return G2Element(self.curve.decode(data), self)

    def decode_gt(self, data: bytes) -> GTElement:
        """Deserialize a GT element (two fixed-width F_p coefficients).

        Validates the subgroup: the decoded value must have order
        dividing ``r`` (rejects arbitrary F_p2 values)."""
        size = self.params.field_bytes
        if len(data) != 2 * size:
            raise EncodingError("bad GT encoding width")
        value = Fp2(int.from_bytes(data[:size], "big"),
                    int.from_bytes(data[size:], "big"), self.params.p)
        if value.is_zero() or not (value ** self.order).is_one():
            raise EncodingError("value is not in the order-r subgroup")
        return GTElement(value, self)

    def random_g1(self, rng: Optional[random.Random] = None) -> G1Element:
        """Random G1 generator (used for the per-beacon DH base ``g``)."""
        rng = rng or random.SystemRandom()
        return G1Element(self.curve.random_point(rng), self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairingGroup):
            return NotImplemented
        return self.params == other.params

    def __hash__(self) -> int:
        return hash(self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairingGroup({self.params.name})"


def _join(parts: Iterable[bytes]) -> bytes:
    """Length-prefix concatenation (injective encoding of the tuple)."""
    out: List[bytes] = []
    for part in parts:
        out.append(len(part).to_bytes(4, "big"))
        out.append(part)
    return b"".join(out)


def sha256(data: bytes) -> bytes:
    """Convenience SHA-256 used across the package."""
    return hashlib.sha256(data).digest()

"""Elliptic-curve arithmetic for ``y^2 = x^3 + x`` over F_p.

Affine coordinates throughout: modular inversion in Python is a single
``pow(x, -1, p)`` call, which keeps additions simple and -- crucially for
the Tate pairing -- exposes the line slopes the Miller loop needs.

Points are immutable; the point at infinity is the singleton produced by
:meth:`Point.infinity`.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import EncodingError, NotOnCurveError, ParameterError
from repro.mathx import bytes_to_int, int_to_bytes, sqrt_mod_p34, wnaf_digits
from repro.pairing.params import PairingParams


class Point:
    """An affine point on ``y^2 = x^3 + x`` over F_p, or infinity."""

    __slots__ = ("x", "y", "p", "inf")

    def __init__(self, x: int, y: int, p: int, inf: bool = False) -> None:
        self.p = p
        self.inf = inf
        if inf:
            self.x = 0
            self.y = 0
        else:
            self.x = x % p
            self.y = y % p

    @classmethod
    def infinity(cls, p: int) -> "Point":
        """Return the identity element of the curve group."""
        return cls(0, 0, p, inf=True)

    def is_infinity(self) -> bool:
        return self.inf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.inf or other.inf:
            return self.inf == other.inf and self.p == other.p
        return (self.x, self.y, self.p) == (other.x, other.y, other.p)

    def __hash__(self) -> int:
        return hash((self.x, self.y, self.p, self.inf))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.inf:
            return "Point(infinity)"
        return f"Point({self.x:#x}, {self.y:#x})"


class Curve:
    """Group operations on the order-``r`` subgroup of ``E(F_p)``.

    All methods validate nothing per-call for speed; use
    :meth:`require_on_curve` / :meth:`in_subgroup` at trust boundaries
    (deserialization does this automatically).
    """

    def __init__(self, params: PairingParams) -> None:
        self.params = params
        self.p = params.p
        self.r = params.r
        self.h = params.h

    # -- predicates ----------------------------------------------------

    def is_on_curve(self, point: Point) -> bool:
        """Check the curve equation ``y^2 = x^3 + x``."""
        if point.is_infinity():
            return True
        x, y, p = point.x, point.y, self.p
        return (y * y - (x * x * x + x)) % p == 0

    def require_on_curve(self, point: Point) -> Point:
        """Return ``point`` or raise :class:`NotOnCurveError`."""
        if not self.is_on_curve(point):
            raise NotOnCurveError("point fails the curve equation")
        return point

    def in_subgroup(self, point: Point) -> bool:
        """Check membership in the prime-order-``r`` subgroup.

        Must bypass :meth:`mul` (which reduces scalars mod ``r`` and
        would trivially return infinity for every point).
        """
        return (self.is_on_curve(point)
                and self._mul_raw(point, self.r).is_infinity())

    # -- group law -----------------------------------------------------

    def neg(self, point: Point) -> Point:
        if point.is_infinity():
            return point
        return Point(point.x, -point.y, self.p)

    def add(self, lhs: Point, rhs: Point) -> Point:
        """Return ``lhs + rhs`` (affine chord-and-tangent)."""
        if lhs.is_infinity():
            return rhs
        if rhs.is_infinity():
            return lhs
        p = self.p
        x1, y1, x2, y2 = lhs.x, lhs.y, rhs.x, rhs.y
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return Point.infinity(p)
            slope = (3 * x1 * x1 + 1) * pow(2 * y1, -1, p) % p
        else:
            slope = (y2 - y1) * pow(x2 - x1, -1, p) % p
        x3 = (slope * slope - x1 - x2) % p
        y3 = (slope * (x1 - x3) - y1) % p
        return Point(x3, y3, p)

    def double(self, point: Point) -> Point:
        return self.add(point, point)

    def mul(self, point: Point, scalar: int) -> Point:
        """Return ``scalar * point`` for a subgroup point.

        The scalar is reduced modulo the subgroup order ``r``; cofactor
        clearing (where the point is *not* yet in the subgroup) uses
        :meth:`_mul_raw` directly.
        """
        return self._mul_raw(point, scalar % self.r)

    def _mul_raw(self, point: Point, scalar: int) -> Point:
        """Jacobian-coordinate double-and-add (one inversion total).

        The curve is ``y^2 = x^3 + a*x`` with ``a = 1``; the affine
        chord-and-tangent in :meth:`add` stays as the slow reference
        implementation (the Miller loop needs its slopes anyway).
        """
        if scalar < 0:
            return self._mul_raw(self.neg(point), -scalar)
        if point.is_infinity() or scalar == 0:
            return Point.infinity(self.p)
        p = self.p
        jx, jy, jz = point.x, point.y, 1
        rx, ry, rz = 0, 1, 0   # Jacobian infinity
        while scalar:
            if scalar & 1:
                rx, ry, rz = self._jadd(rx, ry, rz, jx, jy, jz)
            jx, jy, jz = self._jdouble(jx, jy, jz)
            scalar >>= 1
        return self._jacobian_to_affine(rx, ry, rz)

    def _jdouble(self, x, y, z):
        p = self.p
        if z == 0 or y == 0:
            return (0, 1, 0)
        ysq = y * y % p
        s = 4 * x * ysq % p
        zsq = z * z % p
        m = (3 * x * x + zsq * zsq) % p          # a = 1
        nx = (m * m - 2 * s) % p
        ny = (m * (s - nx) - 8 * ysq * ysq) % p
        nz = 2 * y * z % p
        return (nx, ny, nz)

    def _jadd(self, x1, y1, z1, x2, y2, z2):
        p = self.p
        if z1 == 0:
            return (x2, y2, z2)
        if z2 == 0:
            return (x1, y1, z1)
        z1sq = z1 * z1 % p
        z2sq = z2 * z2 % p
        u1 = x1 * z2sq % p
        u2 = x2 * z1sq % p
        s1 = y1 * z2sq * z2 % p
        s2 = y2 * z1sq * z1 % p
        if u1 == u2:
            if s1 != s2:
                return (0, 1, 0)
            return self._jdouble(x1, y1, z1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        hsq = h * h % p
        hcu = hsq * h % p
        nx = (r * r - hcu - 2 * u1 * hsq) % p
        ny = (r * (u1 * hsq - nx) - s1 * hcu) % p
        nz = h * z1 * z2 % p
        return (nx, ny, nz)

    def multi_mul(self, pairs: "list[Tuple[Point, int]]") -> Point:
        """Return ``sum(k_i * P_i)`` via interleaved width-4 wNAF.

        Scalars are reduced modulo ``r``.  All terms share one Jacobian
        doubling chain (the dominant cost), with per-point tables of odd
        multiples; still counted as ONE multi-exponentiation by the
        instrumentation layer (the counting happens in
        :meth:`repro.pairing.group.PairingGroup.multi_exp`).
        """
        return self.multi_mul_raw([(point, scalar % self.r)
                                   for point, scalar in pairs])

    def multi_mul_raw(self, pairs: "list[Tuple[Point, int]]",
                      width: int = 4) -> Point:
        """Interleaved-wNAF ``sum(k_i * P_i)`` without scalar reduction.

        Exposed separately because batched subgroup screening needs
        scalars of the form ``delta_i * r`` that must NOT be reduced
        modulo ``r`` (they would vanish).
        """
        p = self.p
        half_entries = 1 << (width - 2)     # odd multiples 1,3,..,2^(w-1)-1
        entries = []
        longest = 0
        for point, scalar in pairs:
            if scalar < 0:
                point, scalar = self.neg(point), -scalar
            if scalar == 0 or point.is_infinity():
                continue
            digits = wnaf_digits(scalar, width)
            table = self._odd_multiples(point, half_entries)
            entries.append((digits, table))
            longest = max(longest, len(digits))
        if not entries:
            return Point.infinity(p)
        rx, ry, rz = 0, 1, 0   # Jacobian infinity
        for i in range(longest - 1, -1, -1):
            rx, ry, rz = self._jdouble(rx, ry, rz)
            for digits, table in entries:
                if i >= len(digits):
                    continue
                digit = digits[i]
                if digit == 0:
                    continue
                if digit > 0:
                    tx, ty, tz = table[(digit - 1) >> 1]
                else:
                    tx, ty, tz = table[(-digit - 1) >> 1]
                    ty = -ty % p
                rx, ry, rz = self._jadd(rx, ry, rz, tx, ty, tz)
        return self._jacobian_to_affine(rx, ry, rz)

    def _odd_multiples(self, point: Point, count: int):
        """Jacobian tuples ``[1P, 3P, 5P, ...]`` (``count`` entries)."""
        base = (point.x, point.y, 1)
        table = [base]
        if count > 1:
            twice = self._jdouble(*base)
            for _ in range(count - 1):
                table.append(self._jadd(*table[-1], *twice))
        return table

    def _jacobian_to_affine(self, rx: int, ry: int, rz: int) -> Point:
        p = self.p
        if rz == 0:
            return Point.infinity(p)
        z_inv = pow(rz, -1, p)
        z_inv_sq = z_inv * z_inv % p
        return Point(rx * z_inv_sq % p, ry * z_inv_sq * z_inv % p, p)

    def clear_cofactor(self, point: Point) -> Point:
        """Map an arbitrary curve point into the order-``r`` subgroup."""
        return self._mul_raw(point, self.h)

    # -- encoding --------------------------------------------------------

    def lift_x(self, x: int, y_parity: int) -> Point:
        """Return the curve point with abscissa ``x`` and ``y`` parity.

        Raises :class:`NotOnCurveError` when ``x^3 + x`` is a non-residue.
        """
        p = self.p
        x %= p
        rhs = (x * x * x + x) % p
        try:
            y = sqrt_mod_p34(rhs, p)
        except ParameterError as exc:
            raise NotOnCurveError(f"no point with x = {x:#x}") from exc
        if y % 2 != y_parity:
            y = p - y
        return Point(x, y, p)

    def encode(self, point: Point) -> bytes:
        """Serialize compressed: tag byte (0 / 2 / 3) + big-endian x."""
        size = self.params.field_bytes
        if point.is_infinity():
            return b"\x00" + b"\x00" * size
        tag = 2 + (point.y & 1)
        return bytes([tag]) + int_to_bytes(point.x, size)

    def decode(self, data: bytes) -> Point:
        """Deserialize and validate a compressed point.

        The decoded point is checked against the curve equation; subgroup
        membership is the caller's concern (checked once at protocol
        boundaries, where it matters, because it costs a scalar mul).
        """
        size = self.params.field_bytes
        if len(data) != size + 1:
            raise EncodingError(
                f"point encoding must be {size + 1} bytes, got {len(data)}")
        tag = data[0]
        if tag == 0:
            if any(data[1:]):
                raise EncodingError("non-zero payload on infinity encoding")
            return Point.infinity(self.p)
        if tag not in (2, 3):
            raise EncodingError(f"bad point tag {tag}")
        try:
            return self.lift_x(bytes_to_int(data[1:]), tag - 2)
        except NotOnCurveError as exc:
            raise EncodingError("encoded x lifts to no curve point") from exc

    # -- hashing ---------------------------------------------------------

    def point_from_digest_stream(self, stream) -> Point:
        """Map an infinite byte stream to a subgroup point (try-and-increment).

        ``stream`` is a callable ``counter -> bytes`` producing
        field-sized digests; the first abscissa that lifts and survives
        cofactor clearing wins.  Exposed for :mod:`repro.pairing.hashing`.
        """
        counter = 0
        size = self.params.field_bytes
        while True:
            digest = stream(counter)
            x = bytes_to_int(digest[:size]) % self.p
            counter += 1
            try:
                point = self.lift_x(x, y_parity=digest[-1] & 1)
            except NotOnCurveError:
                continue
            cleared = self.clear_cofactor(point)
            if not cleared.is_infinity():
                return cleared

    def random_point(self, rng) -> Point:
        """Return a uniformly-ish random subgroup point (for tests)."""
        while True:
            x = rng.randrange(self.p)
            try:
                point = self.lift_x(x, y_parity=rng.randrange(2))
            except NotOnCurveError:
                continue
            cleared = self.clear_cofactor(point)
            if not cleared.is_infinity():
                return cleared

"""Bilinear pairing substrate.

A from-scratch Type-1 (symmetric) pairing on the supersingular curve
``y^2 = x^3 + x`` over F_p with ``p = 3 (mod 4)``: embedding degree 2,
distortion map ``phi(x, y) = (-x, i*y)``, and the Tate pairing computed
with Miller's algorithm plus denominator elimination.

The public entry point is :class:`repro.pairing.group.PairingGroup`,
which exposes the (G1, G2, GT, psi, e) interface the PEACE scheme is
written against.  See DESIGN.md for why a Type-1 instantiation replaces
the paper's MNT curves.
"""

from repro.pairing.fields import Fp2
from repro.pairing.params import (
    PRESETS,
    PairingParams,
    find_parameters,
    get_params,
)
from repro.pairing.curve import Curve, Point
from repro.pairing.precompute import FixedBaseTable, PairingTable
from repro.pairing.group import (
    FixedBaseExp,
    G1Element,
    G2Element,
    GTElement,
    PairingGroup,
)

__all__ = [
    "Curve",
    "FixedBaseExp",
    "FixedBaseTable",
    "Fp2",
    "G1Element",
    "G2Element",
    "GTElement",
    "PRESETS",
    "PairingGroup",
    "PairingParams",
    "PairingTable",
    "Point",
    "find_parameters",
    "get_params",
]

"""Tate pairing via Miller's algorithm with denominator elimination.

For the supersingular curve ``y^2 = x^3 + x`` over F_p (``p = 3 mod 4``)
with distortion map ``phi(x, y) = (-x, i*y)``, the modified Tate pairing

    e(P, Q) = f_{r,P}(phi(Q)) ^ ((p^2 - 1) / r)

is bilinear, symmetric, and non-degenerate on the order-``r`` subgroup.

Denominator elimination: vertical-line evaluations at ``phi(Q)`` depend
only on its x-coordinate ``-x_Q``, which lies in F_p, and every F_p*
value is annihilated by the ``(p - 1)`` factor of the final exponent --
so the Miller loop evaluates line numerators only.  The loop below works
on raw integer pairs ``(a, b)`` representing ``a + b*i`` for speed; the
result is wrapped into :class:`~repro.pairing.fields.Fp2` at the end.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import ParameterError
from repro.mathx import wnaf_digits
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp2

#: wNAF digit strings keyed by ``(exponent, width)``.  The only exponent
#: that flows through here is the curve cofactor ``h``, once per preset,
#: so the cache stays tiny while saving a recoding pass per pairing.
_WNAF_CACHE: Dict[Tuple[int, int], List[int]] = {}


def _cached_wnaf(exponent: int, width: int) -> List[int]:
    digits = _WNAF_CACHE.get((exponent, width))
    if digits is None:
        digits = wnaf_digits(exponent, width)
        _WNAF_CACHE[(exponent, width)] = digits
    return digits


def final_exponentiation(curve: Curve, value: Fp2) -> Fp2:
    """Raise a Miller-loop output to ``(p^2 - 1) / r``.

    Factored as ``(p - 1) * h`` (the parameters guarantee
    ``p + 1 = h * r``): the ``p - 1`` part is one Frobenius (conjugation
    in F_p2) and one inversion, after which the result is *unitary*
    (norm 1), so the remaining ``h`` exponentiation runs on the unit
    circle where squaring costs one F_p square plus one F_p multiply and
    inversion is free (conjugation).  Identical output to the direct
    ``value ** ((p*p - 1) // r)``, several times faster.
    """
    p = curve.p
    easy = value.conjugate() * value.inverse()      # value^(p-1), unitary
    return _unitary_pow(easy.a, easy.b, curve.h, p)


def final_exponentiation_product(curve: Curve, values: Iterable[Fp2]) -> Fp2:
    """Final-exponentiate the product of several Miller values at once.

    ``FE(a) * FE(b) == FE(a * b)`` (the final exponentiation is a group
    homomorphism), so verification equations that multiply several
    pairings together can accumulate the raw Miller values and pay for a
    single hard exponentiation on the product.  This shared tail is a
    wall-clock optimisation only: callers still note one abstract
    ``pairing`` per Miller evaluation (see ``PairingGroup.pair_product``
    for the billing convention).
    """
    p = curve.p
    acc = Fp2.one(p)
    for value in values:
        acc = acc * value
    return final_exponentiation(curve, acc)


def _unitary_pow(base_a: int, base_b: int, exponent: int, p: int) -> Fp2:
    """wNAF exponentiation of a norm-1 Fp2 element (raw-integer loop)."""
    digits = _cached_wnaf(exponent, 4)
    # Odd powers g, g^3, g^5, g^7; negative digits conjugate for free.
    square_a = (2 * base_a * base_a - 1) % p
    square_b = 2 * base_a * base_b % p
    odd = [(base_a, base_b)]
    for _ in range(3):
        prev_a, prev_b = odd[-1]
        odd.append(((prev_a * square_a - prev_b * square_b) % p,
                    (prev_a * square_b + prev_b * square_a) % p))
    result_a, result_b = 1, 0
    for digit in reversed(digits):
        # Unitary square: products of norm-1 elements stay norm-1.
        result_a, result_b = ((2 * result_a * result_a - 1) % p,
                              2 * result_a * result_b % p)
        if digit:
            g_a, g_b = odd[(abs(digit) - 1) >> 1]
            if digit < 0:
                g_b = -g_b
            result_a, result_b = ((result_a * g_a - result_b * g_b) % p,
                                  (result_a * g_b + result_b * g_a) % p)
    return Fp2(result_a, result_b, p)


def miller_loop(curve: Curve, point_p: Point, point_q: Point) -> Fp2:
    """Evaluate ``f_{r,P}`` at ``phi(Q)`` (numerator lines only).

    Both inputs must be non-infinity points of the order-``r`` subgroup;
    the caller (``tate_pairing``) enforces this.
    """
    p = curve.p
    xq, yq = point_q.x, point_q.y
    x_phi = (-xq) % p           # phi(Q).x in F_p
    # phi(Q).y = yq * i, i.e. the Fp2 element (0, yq).

    f_a, f_b = 1, 0             # accumulator in Fp2
    xv, yv = point_p.x, point_p.y
    xp_, yp_ = point_p.x, point_p.y
    at_infinity = False

    for bit in bin(curve.r)[3:]:
        # Square the accumulator.
        f_a, f_b = ((f_a + f_b) * (f_a - f_b) % p, 2 * f_a * f_b % p)
        if not at_infinity:
            if yv == 0:
                # Tangent at a 2-torsion point is vertical: contributes
                # (x_phi - xv) in F_p -- but we keep it since only the
                # *ratio* structure matters pre-final-exponentiation;
                # multiplying by an F_p value is killed by final exp.
                # Doubling lands at infinity.
                at_infinity = True
            else:
                slope = (3 * xv * xv + 1) * pow(2 * yv, -1, p) % p
                # line numerator: (y_phi - yv) - slope * (x_phi - xv)
                l_a = (-yv - slope * (x_phi - xv)) % p
                l_b = yq
                f_a, f_b = ((f_a * l_a - f_b * l_b) % p,
                            (f_a * l_b + f_b * l_a) % p)
                x3 = (slope * slope - 2 * xv) % p
                y3 = (slope * (xv - x3) - yv) % p
                xv, yv = x3, y3
        if bit == "1" and not at_infinity:
            if xv == xp_ and (yv + yp_) % p == 0:
                # Adding P to -P: vertical line, F_p-valued, killed by
                # the final exponentiation -- skip the multiply.
                at_infinity = True
            else:
                if xv == xp_:
                    slope = (3 * xv * xv + 1) * pow(2 * yv, -1, p) % p
                else:
                    slope = (yp_ - yv) * pow(xp_ - xv, -1, p) % p
                l_a = (-yv - slope * (x_phi - xv)) % p
                l_b = yq
                f_a, f_b = ((f_a * l_a - f_b * l_b) % p,
                            (f_a * l_b + f_b * l_a) % p)
                x3 = (slope * slope - xv - xp_) % p
                y3 = (slope * (xv - x3) - yv) % p
                xv, yv = x3, y3
    return Fp2(f_a, f_b, p)


def tate_pairing(curve: Curve, point_p: Point, point_q: Point) -> Fp2:
    """Return the modified Tate pairing ``e(P, Q)`` as an Fp2 element.

    Degenerate inputs (either point at infinity) pair to 1, matching the
    bilinear-map convention ``e(O, Q) = e(P, O) = 1``.
    """
    if point_p.p != curve.p or point_q.p != curve.p:
        raise ParameterError("points from a different field")
    if point_p.is_infinity() or point_q.is_infinity():
        return Fp2.one(curve.p)
    raw = miller_loop(curve, point_p, point_q)
    return final_exponentiation(curve, raw)

"""Fixed-argument precomputation: the substrate of the crypto engine.

PEACE's hot paths repeat the same two expensive shapes with one operand
held fixed:

* exponentiations of a fixed base (``g1`` during member-key issuance,
  the per-period generators), and
* pairings whose first argument is a fixed system parameter (``g2``,
  ``w``, the per-period ``u_hat`` / ``v_hat``) -- Section V.C's
  verification equation and the Eq.3 revocation scan.

This module provides the two corresponding tables:

:class:`FixedBaseTable`
    Signed-window fixed-base scalar multiplication: per-window
    multiples of ``2^(w*j) * P`` are precomputed once, after which a
    multiplication costs roughly ``r.bit_length() / w`` Jacobian
    additions and zero doublings.

:class:`PairingTable`
    The Miller loop of ``e(P, .)`` depends on ``P`` through the
    tangent/chord *line coefficients* only.  Storing them replaces all
    per-pairing point arithmetic (and its modular inversions) with two
    coefficient multiplications per loop iteration.  Because the Type-1
    pairing here is symmetric (``e(P, Q) == e(Q, P)``), a table built
    for ``u_hat`` also serves checks written as ``e(X, u_hat)`` -- the
    swap behind the engine-accelerated Eq.3 scan.

Neither table reports to :mod:`repro.instrument`: precomputation is an
implementation strategy, not an operation of the paper's abstract cost
model.  Callers that evaluate a table in lieu of a pairing or an
exponentiation are responsible for noting the abstract operation (see
``PairingGroup.pair_with``).  Every code path here is cross-checked
against the naive reference implementations by
``tests/test_pairing_precompute.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParameterError
from repro.mathx import signed_window_digits
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp2
from repro.pairing.tate import final_exponentiation


class FixedBaseTable:
    """Signed-window precomputation for ``k * P`` with ``P`` fixed.

    Stores ``d * 2^(width*j) * P`` for every window position ``j`` and
    digit ``d`` in ``1 .. 2^(width-1)`` (negative digits negate on the
    fly).  Build cost is a few hundred Jacobian operations; afterwards a
    scalar multiplication is ~``ceil(bits/width)`` Jacobian additions --
    no doublings at all.
    """

    __slots__ = ("curve", "point", "width", "_blocks")

    def __init__(self, curve: Curve, point: Point, width: int = 4) -> None:
        if width < 2:
            raise ParameterError("fixed-base window width must be >= 2")
        self.curve = curve
        self.point = point
        self.width = width
        self._blocks: List[List[Tuple[int, int, int]]] = []
        if point.is_infinity():
            return
        # Signed recoding of a scalar < r can carry into one extra window.
        blocks = (curve.r.bit_length() + width - 1) // width + 1
        half = 1 << (width - 1)
        base = (point.x, point.y, 1)
        for _ in range(blocks):
            row = [base]
            for _ in range(half - 1):
                row.append(curve._jadd(*row[-1], *base))
            self._blocks.append(row)
            for _ in range(width):
                base = curve._jdouble(*base)

    def mul(self, scalar: int) -> Point:
        """Return ``(scalar mod r) * P``; bit-exact vs :meth:`Curve.mul`."""
        curve = self.curve
        scalar %= curve.r
        if scalar == 0 or not self._blocks:
            return Point.infinity(curve.p)
        p = curve.p
        rx, ry, rz = 0, 1, 0
        for j, digit in enumerate(signed_window_digits(scalar, self.width)):
            if digit == 0:
                continue
            if digit > 0:
                tx, ty, tz = self._blocks[j][digit - 1]
            else:
                tx, ty, tz = self._blocks[j][-digit - 1]
                ty = -ty % p
            rx, ry, rz = curve._jadd(rx, ry, rz, tx, ty, tz)
        return curve._jacobian_to_affine(rx, ry, rz)


class PairingTable:
    """Miller-loop line coefficients for a fixed first pairing argument.

    For each loop iteration the tangent/chord line through the running
    multiple of ``P``, evaluated at ``phi(Q)``, is the Fp2 element
    ``(c0 + c1 * x_phi) + y_Q * i`` -- the pair ``(c1, c0)`` depends
    only on ``P`` and is stored at build time.  Evaluation then needs no
    point arithmetic and no modular inversions, reproducing
    ``miller_loop(curve, P, Q)`` bit-for-bit before the shared final
    exponentiation.
    """

    __slots__ = ("curve", "point", "_steps")

    def __init__(self, curve: Curve, point: Point) -> None:
        self.curve = curve
        self.point = point
        # One entry per Miller iteration: the (c1, c0) line coefficients
        # contributed by the doubling and (on set bits) addition steps.
        self._steps: List[List[Tuple[int, int]]] = []
        if point.is_infinity():
            return
        p = curve.p
        xp_, yp_ = point.x, point.y
        xv, yv = xp_, yp_
        at_infinity = False
        for bit in bin(curve.r)[3:]:
            lines: List[Tuple[int, int]] = []
            if not at_infinity:
                if yv == 0:
                    at_infinity = True
                else:
                    slope = (3 * xv * xv + 1) * pow(2 * yv, -1, p) % p
                    lines.append((-slope % p, (slope * xv - yv) % p))
                    x3 = (slope * slope - 2 * xv) % p
                    y3 = (slope * (xv - x3) - yv) % p
                    xv, yv = x3, y3
            if bit == "1" and not at_infinity:
                if xv == xp_ and (yv + yp_) % p == 0:
                    at_infinity = True
                else:
                    if xv == xp_:
                        slope = (3 * xv * xv + 1) * pow(2 * yv, -1, p) % p
                    else:
                        slope = (yp_ - yv) * pow(xp_ - xv, -1, p) % p
                    lines.append((-slope % p, (slope * xv - yv) % p))
                    x3 = (slope * slope - xv - xp_) % p
                    y3 = (slope * (xv - x3) - yv) % p
                    xv, yv = x3, y3
            self._steps.append(lines)

    @classmethod
    def build_fast(cls, curve: Curve, point: Point) -> "PairingTable":
        """Build a table via two batched inversions instead of one per step.

        Delegates the chain walk to ``fastpath.table_steps``, which
        replays the exact affine double-and-add above in Jacobian
        coordinates and recovers bit-identical ``(c1, c0)`` line
        coefficients with two Montgomery batch inversions (one for the
        ``Z`` coordinates, one for the slope denominators).  The result
        is indistinguishable from ``PairingTable(curve, point)`` --
        ``tests/test_batch_core.py`` pins the step-for-step equality.
        """
        from repro.pairing import fastpath

        table = cls.__new__(cls)
        table.curve = curve
        table.point = point
        if point.is_infinity():
            table._steps = []
        else:
            table._steps = fastpath.table_steps(curve, point)
        return table

    def miller(self, point_q: Point) -> Fp2:
        """Evaluate the stored lines at ``phi(Q)`` (pre-final-exp value)."""
        curve = self.curve
        p = curve.p
        if point_q.p != p:
            raise ParameterError("point from a different field")
        if self.point.is_infinity() or point_q.is_infinity():
            return Fp2.one(p)
        xq, yq = point_q.x, point_q.y
        x_phi = (-xq) % p
        f_a, f_b = 1, 0
        for lines in self._steps:
            f_a, f_b = ((f_a + f_b) * (f_a - f_b) % p, 2 * f_a * f_b % p)
            for c1, c0 in lines:
                l_a = (c0 + c1 * x_phi) % p
                f_a, f_b = ((f_a * l_a - f_b * yq) % p,
                            (f_a * yq + f_b * l_a) % p)
        return Fp2(f_a, f_b, p)

    def pairing(self, point_q: Point) -> Fp2:
        """Return ``e(P, Q)``; identical output to ``tate_pairing``."""
        if self.point.is_infinity() or point_q.is_infinity():
            if point_q.p != self.curve.p:
                raise ParameterError("point from a different field")
            return Fp2.one(self.curve.p)
        return final_exponentiation(self.curve, self.miller(point_q))

    def pairing_each(self, points: "List[Point]") -> List[Fp2]:
        """``[e(P, Q) for Q in points]`` with one batched easy part.

        Per point the Miller loop is unavoidable, but the final
        exponentiation's easy part ``v^(p-1) = conj(v) / v`` needs one
        field inversion each -- and ``inverse = conj / norm`` makes the
        norm the only inverted scalar, so a Montgomery batch inversion
        shares a single ``pow(_, -1, p)`` across the whole batch.  Each
        result is bit-identical to :meth:`pairing` (field inverses are
        unique); bulk revocation-tag builds use this to amortize the
        per-token cost.
        """
        from repro.pairing.tate import _unitary_pow

        curve = self.curve
        p = curve.p
        results: List[Optional[Fp2]] = [None] * len(points)
        millers: List[Tuple[int, Fp2]] = []
        for index, point_q in enumerate(points):
            if point_q.p != p:
                raise ParameterError("point from a different field")
            if self.point.is_infinity() or point_q.is_infinity():
                results[index] = Fp2.one(p)
            else:
                millers.append((index, self.miller(point_q)))
        if millers:
            # Montgomery batch inversion of the norms a^2 + b^2.
            norms = [(v.a * v.a + v.b * v.b) % p for _, v in millers]
            prefix = []
            running = 1
            for norm in norms:
                prefix.append(running)
                running = running * norm % p
            running = pow(running, -1, p)
            inverses = [0] * len(norms)
            for slot in range(len(norms) - 1, -1, -1):
                inverses[slot] = running * prefix[slot] % p
                running = running * norms[slot] % p
            for (index, value), inv in zip(millers, inverses):
                # easy = conj(v) * v^-1 = conj(v)^2 / norm(v).
                a, b = value.a, value.b
                easy_a = (a * a - b * b) * inv % p
                easy_b = (-2 * a * b) * inv % p
                results[index] = _unitary_pow(easy_a, easy_b, curve.h, p)
        return results

"""Pairing parameter sets for the supersingular curve ``y^2 = x^3 + x``.

A parameter set is ``(p, r, h)`` with ``p = h*r - 1`` prime,
``p = 3 (mod 4)``, and ``r`` a prime dividing ``p + 1 = #E(F_p)``.
The pairing groups are the order-``r`` subgroups of ``E(F_p)`` (G1 = G2
in this Type-1 setting) and of F_p2* (GT).

Four presets are shipped, generated once with :func:`find_parameters`
and frozen here so importing the package never pays generation cost:

========  ==========  =========  ====================================
name      ``r`` bits  ``p`` bits  role
========  ==========  =========  ====================================
TEST      64          128        unit tests (fast, zero security)
SS256     128         256        integration tests
SS512     160         512        default; ~80-bit security, the same
                                 level the paper claims for MNT-170
SS1024    160         1024       high-security preset
========  ==========  =========  ====================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ParameterError
from repro.mathx import is_probable_prime


@dataclass(frozen=True)
class PairingParams:
    """Immutable description of a supersingular pairing curve.

    Attributes:
        name: Human-readable preset label.
        p: Field prime, ``p = 3 (mod 4)``.
        r: Prime order of the pairing groups (the paper's ``p``; renamed
            to avoid colliding with the field prime).
        h: Cofactor with ``p + 1 = h * r``.
    """

    name: str
    p: int
    r: int
    h: int

    def validate(self) -> None:
        """Check internal consistency; raise :class:`ParameterError`."""
        if self.p % 4 != 3:
            raise ParameterError(f"{self.name}: p must be 3 mod 4")
        if self.h * self.r != self.p + 1:
            raise ParameterError(f"{self.name}: h*r != p+1")
        if not is_probable_prime(self.p):
            raise ParameterError(f"{self.name}: p is not prime")
        if not is_probable_prime(self.r):
            raise ParameterError(f"{self.name}: r is not prime")

    @property
    def scalar_bytes(self) -> int:
        """Serialized size of a Z_r scalar."""
        return (self.r.bit_length() + 7) // 8

    @property
    def field_bytes(self) -> int:
        """Serialized size of an F_p coordinate."""
        return (self.p.bit_length() + 7) // 8

    @property
    def point_bytes(self) -> int:
        """Serialized size of a compressed curve point (tag + x)."""
        return 1 + self.field_bytes

    @property
    def gt_bytes(self) -> int:
        """Serialized size of a GT element (two F_p coefficients)."""
        return 2 * self.field_bytes


PRESETS: Dict[str, PairingParams] = {
    "TEST": PairingParams(
        name="TEST",
        r=0xF06D3FEF701966A1,
        h=0x10000000000000088,
        p=0xF06D3FEF70196720BA09F7338D7E8587,
    ),
    "SS256": PairingParams(
        name="SS256",
        r=0x930CDBD30F0AD2A81B2D19A2BEAA14A7,
        h=0x100000000000000000000000000000020,
        p=0x930CDBD30F0AD2A81B2D19A2BEAA14B9619B7A61E15A550365A33457D54294DF,
    ),
    "SS512": PairingParams(
        name="SS512",
        r=882857777327198621437422122265070572194596203571,
        h=int("91739944639602860464432835812083477631862599566731244949"
              "50355357547691504353939232280074212440502746220132"),
        p=int("80993323616640030969293840203215020305670793627178272246"
              "96145015362463027162230207937068087698376322456275623675"
              "79419021099997339930480028454135745049137" "1"),
    ),
    "SS1024": PairingParams(
        name="SS1024",
        r=735534353282416530661845620734073417826760090669,
        h=int("12300315572313620856784744768322366441573186918071506594"
              "49307036182549555219534923030103686935401493438227090503"
              "22214299552689203876695953600699775494388206142090885899"
              "729347827083318884583758435450548517566916626912548274908"
              "112766882031433928533568160966641936"),
        p=int("90473046596513362799611597727297991933563138772871768097"
              "63360666790550551671480387967630006254404009356723057664"
              "77031486302539270983156308545596489880438708566094704945"
              "86123167691503876821917167897404256194256387336625514736"
              "57433735641438405951476252426803549072454237601796793223"
              "5604867945887785691817695183"),
    ),
}

DEFAULT_PRESET = "SS512"


def get_params(name: str = DEFAULT_PRESET) -> PairingParams:
    """Return a shipped preset by name (case-insensitive)."""
    try:
        return PRESETS[name.upper()]
    except KeyError as exc:
        raise ParameterError(
            f"unknown pairing preset {name!r}; "
            f"choose one of {sorted(PRESETS)}") from exc


def find_parameters(r_bits: int, p_bits: int,
                    rng: Optional[random.Random] = None,
                    max_cofactor_steps: int = 500_000) -> PairingParams:
    """Search for a fresh parameter set ``(p, r, h)``.

    Picks a random ``r_bits``-bit prime ``r``, then walks cofactors
    ``h = 0 (mod 4)`` near ``2^(p_bits - r_bits)`` until ``p = h*r - 1``
    is a prime congruent to 3 mod 4.  (``h = 0 (mod 4)`` together with odd
    ``r`` forces ``p = 3 (mod 4)``.)  This is how the shipped presets were
    produced.
    """
    if p_bits <= r_bits:
        raise ParameterError("p_bits must exceed r_bits")
    rng = rng or random.Random()
    while True:
        r = _random_odd_prime(r_bits, rng)
        base = 1 << (p_bits - r_bits)
        base -= base % 4
        for step in range(max_cofactor_steps):
            h = base + 4 * step
            p = h * r - 1
            if p % 4 != 3 or p.bit_length() != p_bits:
                continue
            if is_probable_prime(p):
                params = PairingParams(name=f"gen-{r_bits}-{p_bits}",
                                       p=p, r=r, h=h)
                params.validate()
                return params


def _random_odd_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate

"""Engine-only fast kernels for the batch verification core.

Everything in this module is a wall-clock optimisation of an existing
naive computation in :mod:`repro.pairing.curve` / ``tate`` /
``precompute``: outputs are either bit-identical to the reference
(points, table steps) or identical after the final exponentiation
(Miller values scaled by an F_p* factor, which the ``(p - 1)`` part of
the final exponent annihilates).  The reference implementations stay
untouched so A/B benchmarks keep an honest baseline; only the crypto
engine and the batch core call into this module.

Nothing here reports to :mod:`repro.instrument` -- callers note the
abstract operations at the same milestones the naive path would, which
is what keeps measured operation counts invariant under the engine.

The kernels:

``fused_miller_subgroup``
    One Jacobian double-and-add pass over the bits of ``r`` that yields
    *both* the Miller value of ``e(P, Q)`` (lines evaluated without any
    modular inversion, scaled by F_p* factors) and the exact
    prime-order subgroup verdict for ``P``: an on-curve point distinct
    from infinity has order ``r`` iff the chain degenerates at exactly
    the final add step (``r`` is prime, so any earlier degeneration
    certifies a smaller order and no degeneration certifies
    ``r*P != O``).

``table_steps``
    Bit-identical :class:`~repro.pairing.precompute.PairingTable` line
    coefficients built with two batched inversions instead of one
    inversion per Miller step (Montgomery's trick).

``miller_eval`` / ``unitary_pow_h`` / ``tag_matches``
    Raw-integer helpers for evaluating stored lines and testing
    revocation tags on the unit circle of F_p2 (where the cofactor
    ``h = (p + 1) / r`` has Hamming weight 6, so ``z^h`` is almost all
    cheap unitary squarings).

``GTFixedBase``
    Signed-window fixed-base exponentiation in GT for the cached base
    pairing ``e(g1, g2)`` (unitary, so negative digits conjugate for
    free).

Throughout, squarings are spelled so the multiplication receives the
*same object* twice -- ``m * m``, ``3 * (X * X)`` rather than
``3 * X * X`` -- because CPython's schoolbook bigint multiply takes a
squaring fast path in that case (~25% cheaper at 512 bits).  The
parentheses only reassociate an exact integer product; residues are
unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.mathx import batch_inverse
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp2

#: Cached MSB-first bit strings keyed by the integer itself -- ``r``
#: and ``h`` for each curve in use (two entries per parameter preset).
_BITS_CACHE: Dict[int, str] = {}


def _bits_after_msb(value: int) -> str:
    bits = _BITS_CACHE.get(value)
    if bits is None:
        bits = bin(value)[3:]
        _BITS_CACHE[value] = bits
    return bits


#: Cached MSB-first NAF digit strings (leading digit, always 1,
#: stripped).  The group orders in use have dense binary expansions
#: (SS512's ``r`` has Hamming weight 79 over 160 bits) but NAF weight
#: around ``bits / 3``, so a NAF Miller chain trades ~26 chord-and-line
#: add steps for the same number of doublings -- the value changes only
#: by an F_p* scale, which the final exponentiation kills.
_NAF_CACHE: Dict[int, Tuple[int, ...]] = {}


def _naf_after_msd(value: int) -> Tuple[int, ...]:
    digits = _NAF_CACHE.get(value)
    if digits is None:
        from repro.mathx import wnaf_digits

        little = wnaf_digits(value, 2)
        digits = tuple(reversed(little[:-1]))
        _NAF_CACHE[value] = digits
    return digits


# ---------------------------------------------------------------------------
# Fused Miller pass + exact subgroup check
# ---------------------------------------------------------------------------


def fused_miller_subgroup(curve: Curve, point_p: Point, point_q: Point
                          ) -> Tuple[bool, int, int]:
    """Return ``(P_in_subgroup, f_a, f_b)`` for ``e(P, Q)`` in one pass.

    ``(f_a, f_b)`` is the Miller value ``f_{r,P}(phi(Q))`` up to an
    F_p* scale factor (exact after final exponentiation).  The chain
    walks the *NAF* digits of ``r`` (fewer add steps than the dense
    binary expansion; the omitted vertical lines evaluate in F_p at
    ``phi(Q)`` and are likewise killed by the final exponentiation) and
    computes ``r * P`` as a side effect.  Because ``r`` is prime, odd,
    and ``P`` is on-curve and not infinity, ``P`` lies in the
    order-``r`` subgroup iff the running point degenerates to infinity
    at exactly the last add step: the NAF partial scalars ``s_i``
    satisfy ``0 < |s_i| < r`` before the final digit, so an order-``r``
    point cannot hit infinity early (``2s`` with ``s != 0 mod r`` and
    ``r`` odd is never ``0 mod r`` either), while any early degeneration
    certifies a different order.  When the verdict is ``False`` the
    Miller value is meaningless and must be discarded.
    """
    p = curve.p
    xp_, yp_ = point_p.x, point_p.y
    yp_neg = (-yp_) % p
    x_phi = (-point_q.x) % p
    yq = point_q.y
    X, Y, Z = xp_, yp_, 1
    f_a, f_b = 1, 0
    at_inf = False
    digits = _naf_after_msd(curve.r)
    last = len(digits) - 1
    final_add_inf = False
    for idx, digit in enumerate(digits):
        f_a, f_b = ((f_a + f_b) * (f_a - f_b) % p, 2 * f_a * f_b % p)
        if not at_inf:
            if Y == 0:
                at_inf = True
            else:
                # Tangent line at V = (X : Y : Z), scaled by 2*Y*Z^3:
                #   D*l = M*(X - Z^2*x) - 2*Y^2 + (2*Y*Z^3)*y
                # with M = 3*X^2 + Z^4 (curve coefficient a = 1).
                ysq = Y * Y % p
                zsq = Z * Z % p
                m = (3 * (X * X) + zsq * zsq) % p
                nz = 2 * Y * Z % p
                l_a = (m * (X - zsq * x_phi % p) - 2 * ysq) % p
                l_b = nz * zsq % p * yq % p
                t1 = f_a * l_a
                t2 = f_b * l_b
                f_a, f_b = ((t1 - t2) % p,
                            ((f_a + f_b) * (l_a + l_b) - t1 - t2) % p)
                s = 4 * X * ysq % p
                nx = (m * m - 2 * s) % p
                Y = (m * (s - nx) - 8 * (ysq * ysq)) % p
                X, Z = nx, nz
        if digit and not at_inf:
            yd = yp_ if digit > 0 else yp_neg
            zsq = Z * Z % p
            u2 = xp_ * zsq % p
            s2 = yd * zsq % p * Z % p
            if X == u2:
                if (Y + s2) % p == 0:
                    at_inf = True
                    if idx == last:
                        final_add_inf = True
                    continue
                # V == digit*P exactly: chord degenerates to the tangent.
                ysq = Y * Y % p
                m = (3 * (X * X) + zsq * zsq) % p
                nz = 2 * Y * Z % p
                l_a = (m * (X - zsq * x_phi % p) - 2 * ysq) % p
                l_b = nz * zsq % p * yq % p
                t1 = f_a * l_a
                t2 = f_b * l_b
                f_a, f_b = ((t1 - t2) % p,
                            ((f_a + f_b) * (l_a + l_b) - t1 - t2) % p)
                s = 4 * X * ysq % p
                nx = (m * m - 2 * s) % p
                Y = (m * (s - nx) - 8 * (ysq * ysq)) % p
                X, Z = nx, nz
            else:
                # Chord through V and digit*P, scaled by hh*Z^3:
                #   D*l = rr*(X - Z^2*x) - hh*Y + (hh*Z^3)*y
                hh = (u2 - X) % p
                rr = (s2 - Y) % p
                hz = hh * Z % p
                l_a = (rr * (X - zsq * x_phi % p) - hh * Y) % p
                l_b = hz * zsq % p * yq % p
                t1 = f_a * l_a
                t2 = f_b * l_b
                f_a, f_b = ((t1 - t2) % p,
                            ((f_a + f_b) * (l_a + l_b) - t1 - t2) % p)
                hsq = hh * hh % p
                hcu = hsq * hh % p
                nx = (rr * rr - hcu - 2 * X * hsq) % p
                Y = (rr * (X * hsq - nx) - Y * hcu) % p
                X, Z = nx, hz
    return final_add_inf, f_a, f_b


# ---------------------------------------------------------------------------
# Bit-identical pairing-table construction (two batched inversions)
# ---------------------------------------------------------------------------


def table_steps(curve: Curve, point: Point
                ) -> List[List[Tuple[int, int]]]:
    """Line coefficients identical to ``PairingTable(curve, point)._steps``.

    Phase 1 walks the double-and-add chain in Jacobian coordinates,
    recording which affine point each line is anchored at; phase 2
    batch-inverts the ``Z`` coordinates and the slope denominators
    (two Montgomery inversions total) and emits the exact ``(c1, c0)``
    pairs the affine reference build produces.
    """
    if point.is_infinity():
        return []
    p = curve.p
    xp_, yp_ = point.x, point.y
    X, Y, Z = xp_, yp_, 1
    at_inf = False
    events: List[List[Tuple[str, int, int, int]]] = []
    for bit in _bits_after_msb(curve.r):
        evs: List[Tuple[str, int, int, int]] = []
        if not at_inf:
            if Y == 0:
                at_inf = True
            else:
                evs.append(("d", X, Y, Z))
                ysq = Y * Y % p
                s = 4 * X * ysq % p
                zsq = Z * Z % p
                m = (3 * (X * X) + zsq * zsq) % p
                nx = (m * m - 2 * s) % p
                ny = (m * (s - nx) - 8 * (ysq * ysq)) % p
                nz = 2 * Y * Z % p
                X, Y, Z = nx, ny, nz
        if bit == "1" and not at_inf:
            zsq = Z * Z % p
            u2 = xp_ * zsq % p
            s2 = yp_ * zsq % p * Z % p
            if X == u2 and (Y + s2) % p == 0:
                at_inf = True
            else:
                evs.append(("a", X, Y, Z))
                if X == u2:  # V == P: the add is a doubling
                    ysq = Y * Y % p
                    s = 4 * X * ysq % p
                    m = (3 * (X * X) + zsq * zsq) % p
                    nx = (m * m - 2 * s) % p
                    ny = (m * (s - nx) - 8 * (ysq * ysq)) % p
                    nz = 2 * Y * Z % p
                    X, Y, Z = nx, ny, nz
                else:
                    hh = (u2 - X) % p
                    rr = (s2 - Y) % p
                    hsq = hh * hh % p
                    hcu = hsq * hh % p
                    nx = (rr * rr - hcu - 2 * X * hsq) % p
                    ny = (rr * (X * hsq - nx) - Y * hcu) % p
                    nz = hh * Z % p
                    X, Y, Z = nx, ny, nz
        events.append(evs)
    # Phase 2a: all recorded points to affine via one batched inversion.
    zs = [ev[3] for evs in events for ev in evs]
    zinvs = batch_inverse(zs, p)
    flat: List[Tuple[str, int, int]] = []
    k = 0
    for evs in events:
        for kind, ex, ey, _ez in evs:
            zi = zinvs[k]
            k += 1
            zi2 = zi * zi % p
            xv = ex * zi2 % p
            yv = ey * zi2 % p * zi % p
            flat.append((kind, xv, yv))
    # Phase 2b: slope denominators (tangent 2*yv, chord xp_ - xv).
    dens = [2 * yv % p if kind == "d" or xv == xp_ else (xp_ - xv) % p
            for kind, xv, yv in flat]
    dinvs = batch_inverse(dens, p)
    # Phase 2c: the reference line coefficients (c1, c0).
    steps: List[List[Tuple[int, int]]] = []
    k = 0
    for evs in events:
        lines: List[Tuple[int, int]] = []
        for _ in evs:
            kind, xv, yv = flat[k]
            if kind == "d" or xv == xp_:
                slope = (3 * (xv * xv) + 1) * dinvs[k] % p
            else:
                slope = (yp_ - yv) * dinvs[k] % p
            lines.append((-slope % p, (slope * xv - yv) % p))
            k += 1
        steps.append(lines)
    return steps


def naf_steps(curve: Curve, point: Point) -> List[List[Tuple[int, int]]]:
    """Line coefficients for a *NAF* Miller chain over ``r`` (fixed P).

    Same ``(c1, c0)``-per-step format as ``PairingTable._steps`` /
    :func:`table_steps`, but the chain follows the non-adjacent form of
    ``r`` -- around a third the add steps of the dense binary expansion
    at SS512 -- so every evaluation of the table is proportionally
    cheaper.  The value differs from the binary chain's by an F_p*
    factor only (negative digits drop a vertical line that evaluates in
    F_p at ``phi(Q)``), i.e. it is *final-exponentiation-identical*:
    only callers that FE the result (the batch core) may use these
    tables; bit-identity tests against ``tate_pairing`` go through
    :func:`table_steps`.
    """
    if point.is_infinity():
        return []
    p = curve.p
    xp_, yp_ = point.x, point.y
    yp_neg = (-yp_) % p
    X, Y, Z = xp_, yp_, 1
    at_inf = False
    events: List[List[Tuple[str, int, int, int, int]]] = []
    for digit in _naf_after_msd(curve.r):
        evs: List[Tuple[str, int, int, int, int]] = []
        if not at_inf:
            if Y == 0:
                at_inf = True
            else:
                evs.append(("d", X, Y, Z, 0))
                ysq = Y * Y % p
                s = 4 * X * ysq % p
                zsq = Z * Z % p
                m = (3 * (X * X) + zsq * zsq) % p
                nx = (m * m - 2 * s) % p
                ny = (m * (s - nx) - 8 * (ysq * ysq)) % p
                nz = 2 * Y * Z % p
                X, Y, Z = nx, ny, nz
        if digit and not at_inf:
            yd = yp_ if digit > 0 else yp_neg
            zsq = Z * Z % p
            u2 = xp_ * zsq % p
            s2 = yd * zsq % p * Z % p
            if X == u2 and (Y + s2) % p == 0:
                at_inf = True
            else:
                evs.append(("a", X, Y, Z, yd))
                if X == u2:  # V == digit*P: the add is a doubling
                    ysq = Y * Y % p
                    s = 4 * X * ysq % p
                    m = (3 * (X * X) + zsq * zsq) % p
                    nx = (m * m - 2 * s) % p
                    ny = (m * (s - nx) - 8 * (ysq * ysq)) % p
                    nz = 2 * Y * Z % p
                    X, Y, Z = nx, ny, nz
                else:
                    hh = (u2 - X) % p
                    rr = (s2 - Y) % p
                    hsq = hh * hh % p
                    hcu = hsq * hh % p
                    nx = (rr * rr - hcu - 2 * X * hsq) % p
                    ny = (rr * (X * hsq - nx) - Y * hcu) % p
                    nz = hh * Z % p
                    X, Y, Z = nx, ny, nz
        events.append(evs)
    zs = [ev[3] for evs in events for ev in evs]
    zinvs = batch_inverse(zs, p)
    flat: List[Tuple[str, int, int, int]] = []
    k = 0
    for evs in events:
        for kind, ex, ey, _ez, yd in evs:
            zi = zinvs[k]
            k += 1
            zi2 = zi * zi % p
            xv = ex * zi2 % p
            yv = ey * zi2 % p * zi % p
            flat.append((kind, xv, yv, yd))
    dens = [2 * yv % p if kind == "d" or xv == xp_ else (xp_ - xv) % p
            for kind, xv, yv, _yd in flat]
    dinvs = batch_inverse(dens, p)
    steps: List[List[Tuple[int, int]]] = []
    k = 0
    for evs in events:
        lines: List[Tuple[int, int]] = []
        for _ in evs:
            kind, xv, yv, yd = flat[k]
            if kind == "d" or xv == xp_:
                slope = (3 * (xv * xv) + 1) * dinvs[k] % p
            else:
                slope = (yd - yv) * dinvs[k] % p
            lines.append((-slope % p, (slope * xv - yv) % p))
            k += 1
        steps.append(lines)
    return steps


# ---------------------------------------------------------------------------
# Cofactor clearing and hash-to-subgroup (bit-identical to the reference)
# ---------------------------------------------------------------------------


def clear_cofactor_fast(curve: Curve, point: Point) -> Point:
    """``h * P`` bit-identical to ``Curve.clear_cofactor``.

    The cofactor ``h = (p + 1) / r`` is 353 bits with Hamming weight 6,
    so the chain is essentially 352 Jacobian doublings; running them
    inline (no per-step function calls or tuple traffic) is measurably
    faster than ``Curve._mul_raw`` while producing the identical affine
    point -- the doubling and addition formulas are the same ones.
    """
    if point.is_infinity():
        return point
    p = curve.p
    xp_, yp_ = point.x, point.y
    # Modified Jacobian: carry W = Z^4 so the doubling needs 8 field
    # multiplications instead of 9 (W' = 16*Y^4*W reuses the Y^4 the
    # y-update needs anyway).  The 5 add steps re-derive W from Z.
    X, Y, Z, W = xp_, yp_, 1, 1
    for bit in _bits_after_msb(curve.h):
        if Z == 0:
            break
        if Y == 0:
            X, Y, Z = 0, 1, 0
            break
        ysq = Y * Y % p
        xsq = X * X % p
        y4 = ysq * ysq % p
        xy = X + ysq
        # 4*X*Y^2 as 2*((X + Y^2)^2 - X^2 - Y^4): a squaring replaces
        # a general product (exact integer identity before the mod).
        s = 2 * (xy * xy - xsq - y4) % p
        m = (3 * xsq + W) % p
        nx = (m * m - 2 * s) % p
        nz = 2 * Y * Z % p
        Y = (m * (s - nx) - 8 * y4) % p
        W = 16 * y4 * W % p
        X, Z = nx, nz
        if bit == "1":
            X, Y, Z = curve._jadd(X, Y, Z, xp_, yp_, 1)
            zsq = Z * Z % p
            W = zsq * zsq % p
    return curve._jacobian_to_affine(X, Y, Z)


def hash_h0_fast(curve: Curve, data: bytes) -> Tuple[Point, Point]:
    """Drop-in for ``hashing.hash_h0``: identical points, faster clear.

    Replays the exact try-and-increment loop of
    ``Curve.point_from_digest_stream`` (same digest stream, same lift,
    same candidate order) with :func:`clear_cofactor_fast` in place of
    the naive cofactor multiplication, so the returned generator pair
    is byte-for-byte the one the serial path derives.
    """
    from repro.errors import NotOnCurveError
    from repro.mathx.modular import jacobi_symbol
    from repro.pairing import hashing

    size = curve.params.field_bytes
    p = curve.p
    out = []
    for domain in (hashing.DOMAIN_H0_U, hashing.DOMAIN_H0_V):
        stream = hashing._digest_stream(domain, data, size)
        counter = 0
        while True:
            digest = stream(counter)
            x = int.from_bytes(digest[:size], "big") % curve.p
            counter += 1
            # Jacobi prescreen: a non-residue x^3 + x is exactly the
            # candidate ``lift_x`` rejects, but the symbol costs ~1/6th
            # of the sqrt exponentiation the rejection would waste.
            if jacobi_symbol((x * x % p * x + x) % p, p) < 0:
                continue
            try:
                lifted = curve.lift_x(x, y_parity=digest[-1] & 1)
            except NotOnCurveError:  # pragma: no cover - prescreened
                continue
            cleared = clear_cofactor_fast(curve, lifted)
            if not cleared.is_infinity():
                out.append(cleared)
                break
    return out[0], out[1]


def miller_eval(steps: Sequence[Sequence[Tuple[int, int]]],
                point_q: Point, p: int) -> Tuple[int, int]:
    """Evaluate stored lines at ``phi(Q)``; raw ``(a, b)`` Miller value.

    Identical to ``PairingTable.miller`` on the same steps, without the
    :class:`Fp2` wrapping (batch callers combine several raw values
    before one shared final exponentiation).
    """
    x_phi = (-point_q.x) % p
    yq = point_q.y
    yq2 = yq * yq % p
    f_a, f_b = 1, 0
    for lines in steps:
        f_a, f_b = ((f_a + f_b) * (f_a - f_b) % p, 2 * f_a * f_b % p)
        if len(lines) == 1:
            c1, c0 = lines[0]
            l_a = (c0 + c1 * x_phi) % p
            # Karatsuba: (f_a + f_b*i)(l_a + yq*i) in 3 multiplications.
            t1 = f_a * l_a
            t2 = f_b * yq
            f_a, f_b = ((t1 - t2) % p,
                        ((f_a + f_b) * (l_a + yq) - t1 - t2) % p)
        elif lines:
            # Two lines in one step: merge them first (the product of
            # the two degree-1 values costs 2 multiplications with
            # yq^2 cached), then one general Karatsuba into f -- one
            # multiplication fewer than folding them in sequentially,
            # and the residues are identical (associativity mod p).
            (c1a, c0a), (c1b, c0b) = lines
            la1 = (c0a + c1a * x_phi) % p
            la2 = (c0b + c1b * x_phi) % p
            m_a = (la1 * la2 - yq2) % p
            m_b = (la1 + la2) * yq % p
            t1 = f_a * m_a
            t2 = f_b * m_b
            f_a, f_b = ((t1 - t2) % p,
                        ((f_a + f_b) * (m_a + m_b) - t1 - t2) % p)
    return f_a, f_b


def miller_eval_pair(steps1: Sequence[Sequence[Tuple[int, int]]],
                     point_q1: Point,
                     steps2: Sequence[Sequence[Tuple[int, int]]],
                     point_q2: Point, p: int) -> Tuple[int, int]:
    """Raw product of two table evaluations sharing one accumulator.

    Computes ``miller_eval(steps1, q1) * miller_eval(steps2, q2)`` --
    the exact same F_p2 residue, by commutativity -- but the two Miller
    accumulators ride one shared square-and-multiply chain, so each
    iteration pays one F_p2 squaring instead of two.  Requires aligned
    step structure: both tables built over the same scalar with no
    early degeneration (true for every order-``r`` table point); the
    caller falls back to two plain evaluations otherwise.
    """
    if len(steps1) != len(steps2):
        f1 = miller_eval(steps1, point_q1, p)
        f2 = miller_eval(steps2, point_q2, p)
        return ((f1[0] * f2[0] - f1[1] * f2[1]) % p,
                (f1[0] * f2[1] + f1[1] * f2[0]) % p)
    x1 = (-point_q1.x) % p
    y1 = point_q1.y
    x2 = (-point_q2.x) % p
    y2 = point_q2.y
    y1y2 = y1 * y2 % p
    f_a, f_b = 1, 0
    for lines1, lines2 in zip(steps1, steps2):
        f_a, f_b = ((f_a + f_b) * (f_a - f_b) % p, 2 * f_a * f_b % p)
        if len(lines1) == 1 and len(lines2) == 1:
            c1, c0 = lines1[0]
            la1 = (c0 + c1 * x1) % p
            c1, c0 = lines2[0]
            la2 = (c0 + c1 * x2) % p
            # (la1 + y1*i) * (la2 + y2*i) with y1*y2 cached: 3 mults.
            m_a = (la1 * la2 - y1y2) % p
            m_b = (la1 * y2 + la2 * y1) % p
            t1 = f_a * m_a
            t2 = f_b * m_b
            f_a, f_b = ((t1 - t2) % p,
                        ((f_a + f_b) * (m_a + m_b) - t1 - t2) % p)
            continue
        for c1, c0 in lines1:
            l_a = (c0 + c1 * x1) % p
            t1 = f_a * l_a
            t2 = f_b * y1
            f_a, f_b = ((t1 - t2) % p,
                        ((f_a + f_b) * (l_a + y1) - t1 - t2) % p)
        for c1, c0 in lines2:
            l_a = (c0 + c1 * x2) % p
            t1 = f_a * l_a
            t2 = f_b * y2
            f_a, f_b = ((t1 - t2) % p,
                        ((f_a + f_b) * (l_a + y2) - t1 - t2) % p)
    return f_a, f_b


# ---------------------------------------------------------------------------
# Unit-circle arithmetic for revocation tags
# ---------------------------------------------------------------------------


def unitary_pow_h(a: int, b: int, curve: Curve) -> Tuple[int, int]:
    """Raise a norm-1 element to the cofactor ``h`` (plain square chain).

    ``h = (p + 1) / r`` has Hamming weight 6 on the shipped presets, so
    MSB-first square-and-multiply is within a few multiplications of
    optimal and needs no recoding or table.
    """
    p = curve.p
    ra, rb = a, b
    for bit in _bits_after_msb(curve.h):
        ra, rb = ((2 * (ra * ra) - 1) % p, 2 * ra * rb % p)
        if bit == "1":
            ra, rb = ((ra * a - rb * b) % p, (ra * b + rb * a) % p)
    return ra, rb


#: Split ``h = 2^s + t`` (with ``t = h - 2^s < 2^s``) when the
#: real-part tag test below is provably exact for the curve, cached per
#: ``(p, h)``.  ``None`` means "use the full complex chain".
_H_SPLIT_CACHE: Dict[Tuple[int, int], Optional[Tuple[int, str]]] = {}


def _h_split(curve: Curve) -> Optional[Tuple[int, str]]:
    key = (curve.p, curve.h)
    try:
        return _H_SPLIT_CACHE[key]
    except KeyError:
        pass
    import math

    h = curve.h
    s = h.bit_length() - 1
    t = h - (1 << s)
    d = (1 << s) - t  # d > 0 because h < 2^(s+1)
    split: Optional[Tuple[int, str]] = None
    # The real-part test accepts z iff z^h == 1 OR z^d == 1.  Any z in
    # the unitary group (order p + 1) with z^d == 1 has order dividing
    # g = gcd(d, p + 1); when g | h that z also satisfies z^h == 1, so
    # the extra acceptance branch is vacuous and the test is exact.
    if h % math.gcd(d, curve.p + 1) == 0:
        split = (s, bin(t)[3:] if t else "")
    _H_SPLIT_CACHE[key] = split
    return split


def unitary_tag_is_one(z_a: int, z_b: int, curve: Curve) -> bool:
    """Decide ``z^h == 1`` for a norm-1 ``z`` -- the revocation tag test.

    Splitting ``h = 2^s + t`` turns the test into ``z^(2^s) ==
    z^(-t)``, i.e. ``Re(z^(2^s)) == Re(z^t)`` (conjugation inverts a
    unitary element and preserves the real part).  The real part of a
    unitary square needs no imaginary track -- ``Re(z^2) = 2*Re(z)^2 -
    1`` (the Chebyshev recursion, using ``norm(z) == 1``) -- so the
    ``s`` squarings cost one modular squaring each instead of the two
    multiplications of the complex chain, almost halving the dominant
    cost.  Comparing real parts also accepts ``z^(2^s) == z^t``, i.e.
    ``z^d == 1`` for ``d = 2^s - t``; :func:`_h_split` enables the
    shortcut only when every such ``z`` already satisfies ``z^h == 1``
    (``h % gcd(d, p+1) == 0``), so the verdict is exactly ``z^h == 1``
    -- on curves where that fails, the full complex chain runs instead.
    """
    split = _h_split(curve)
    if split is None:  # pragma: no cover - not hit by shipped presets
        ra, rb = unitary_pow_h(z_a, z_b, curve)
        return ra == 1 and rb == 0
    s, tail = split
    p = curve.p
    if tail or curve.h & ((1 << s) - 1):
        # a = z^t by MSB-first square-and-multiply on the unit circle.
        aa, ab = z_a, z_b
        for bit in tail:
            aa, ab = ((2 * (aa * aa) - 1) % p, 2 * aa * ab % p)
            if bit == "1":
                aa, ab = ((aa * z_a - ab * z_b) % p,
                          (aa * z_b + ab * z_a) % p)
        a_re = aa
    else:  # t == 0: z^t == 1
        a_re = 1
    c = z_a
    for _ in range(s):
        c = (2 * (c * c) - 1) % p
    return c == a_re


def tag_matches(m_a: int, m_b: int, t_a: int, t_b: int,
                norm_inv: int, curve: Curve) -> bool:
    """Does ``FE(m) == FE(t)`` for raw Miller values ``m`` and ``t``?

    Write ``w = m * conj(t)``; then ``FE(m) / FE(t) = (w^(p-1))^h``
    (the norm of ``t`` is in F_p and dies under ``p - 1``), so the two
    pairings agree iff ``z^h == 1`` for ``z = w^(p-1) = conj(w)^2 /
    norm(w)``.  ``norm_inv`` is the caller-supplied inverse of
    ``norm(w)`` -- batched across tokens via :func:`batch_inverse`.
    Exact: scale factors in F_p* on either input cancel the same way.
    """
    p = curve.p
    # w = m * conj(t)
    w_a = (m_a * t_a + m_b * t_b) % p
    w_b = (m_b * t_a - m_a * t_b) % p
    # z = conj(w)^2 * norm(w)^-1  (norm-1 by construction)
    c_a = (w_a * w_a - w_b * w_b) % p
    c_b = (-2 * w_a * w_b) % p
    z_a = c_a * norm_inv % p
    z_b = c_b * norm_inv % p
    return unitary_tag_is_one(z_a, z_b, curve)


def fp2_norm(a: int, b: int, p: int) -> int:
    """The field norm ``a^2 + b^2 mod p`` of a raw pair."""
    return (a * a + b * b) % p


def mul_conj(m_a: int, m_b: int, t_a: int, t_b: int, p: int
             ) -> Tuple[int, int]:
    """Return the raw product ``m * conj(t)``."""
    return ((m_a * t_a + m_b * t_b) % p, (m_b * t_a - m_a * t_b) % p)


# ---------------------------------------------------------------------------
# Fixed-base exponentiation in GT
# ---------------------------------------------------------------------------


class GTFixedBase:
    """Signed-window fixed-base powers of one unitary GT element.

    Built once per engine for the cached base pairing ``e(g1, g2)``;
    ``pow(k)`` then costs ~``bits/width`` unitary multiplications and
    no squarings (negative digits conjugate the stored entry for
    free).  Identical output to ``value ** (k % order)``.
    """

    __slots__ = ("p", "order", "width", "_blocks")

    def __init__(self, value: Fp2, order: int, width: int = 4) -> None:
        p = value.p
        self.p = p
        self.order = order
        self.width = width
        blocks = (order.bit_length() + width - 1) // width + 1
        half = 1 << (width - 1)
        self._blocks: List[List[Tuple[int, int]]] = []
        ba, bb = value.a, value.b
        for _ in range(blocks):
            row = [(ba, bb)]
            for _ in range(half - 1):
                ra, rb = row[-1]
                row.append(((ra * ba - rb * bb) % p,
                            (ra * bb + rb * ba) % p))
            self._blocks.append(row)
            for _ in range(width):
                ba, bb = ((ba + bb) * (ba - bb) % p, 2 * ba * bb % p)

    def pow(self, exponent: int) -> Fp2:
        from repro.mathx import signed_window_digits
        p = self.p
        exponent %= self.order
        if exponent == 0:
            return Fp2.one(p)
        ra, rb = 1, 0
        for j, digit in enumerate(signed_window_digits(exponent,
                                                       self.width)):
            if digit == 0:
                continue
            if digit > 0:
                ga, gb = self._blocks[j][digit - 1]
            else:
                ga, gb = self._blocks[j][-digit - 1]
                gb = -gb % p
            ra, rb = ((ra * ga - rb * gb) % p, (ra * gb + rb * ga) % p)
        return Fp2(ra, rb, p)


# ---------------------------------------------------------------------------
# Repeated 2-term multi-exponentiation over a fixed base pair
# ---------------------------------------------------------------------------


class DualMultiExp:
    """Interleaved wNAF ``k1*P1 + k2*P2`` with shared affine tables.

    The SPK verification performs four 2-term multi-exps over just two
    base pairs (``{u, T1}`` for R1 and R3, ``{T2, v}`` for the two
    pairing arguments of R2), so the odd-multiple tables are built once
    per pair -- in affine coordinates via one batched inversion -- and
    each evaluation uses *mixed* additions (affine table entry into the
    Jacobian accumulator, ~11 field multiplications against ~16 for the
    general addition).  Output points are identical to
    ``Curve.multi_mul([(p1, k1), (p2, k2)])`` (affine coordinates are
    canonical, and every edge case -- zero scalars, infinity bases,
    accumulator collisions -- follows the same group law).
    """

    __slots__ = ("curve", "_odds1", "_odds2", "width")

    def __init__(self, curve: Curve, point1: Point, point2: Point,
                 width: int = 4) -> None:
        self.curve = curve
        self.width = width
        count = 1 << (width - 2)
        self._odds1 = _affine_odd_multiples(curve, point1, count)
        self._odds2 = _affine_odd_multiples(curve, point2, count)

    def mul(self, k1: int, k2: int) -> Point:
        """Return ``(k1 mod r) * P1 + (k2 mod r) * P2`` (affine)."""
        from repro.mathx import wnaf_digits

        curve = self.curve
        p = curve.p
        width = self.width
        entries = []
        longest = 0
        for odds, k in ((self._odds1, k1), (self._odds2, k2)):
            k %= curve.r
            if k == 0 or odds is None:
                continue
            digits = wnaf_digits(k, width)
            entries.append((digits, odds))
            longest = max(longest, len(digits))
        if not entries:
            return Point.infinity(p)
        X, Y, Z = 0, 1, 0
        for i in range(longest - 1, -1, -1):
            # Inline Jacobian doubling of the accumulator.
            if Z != 0:
                if Y == 0:
                    X, Y, Z = 0, 1, 0
                else:
                    ysq = Y * Y % p
                    s = 4 * X * ysq % p
                    zsq = Z * Z % p
                    m = (3 * (X * X) + zsq * zsq) % p
                    nx = (m * m - 2 * s) % p
                    nz = 2 * Y * Z % p
                    Y = (m * (s - nx) - 8 * (ysq * ysq)) % p
                    X, Z = nx, nz
            for digits, odds in entries:
                if i >= len(digits):
                    continue
                digit = digits[i]
                if digit == 0:
                    continue
                if digit > 0:
                    ax, ay = odds[(digit - 1) >> 1]
                else:
                    ax, ay = odds[(-digit - 1) >> 1]
                    ay = -ay % p
                # Mixed addition: affine (ax, ay) into Jacobian (X:Y:Z).
                if Z == 0:
                    X, Y, Z = ax, ay, 1
                    continue
                zsq = Z * Z % p
                u2 = ax * zsq % p
                s2 = ay * zsq % p * Z % p
                if X == u2:
                    if Y != s2:
                        X, Y, Z = 0, 1, 0
                        continue
                    if Y == 0:          # doubling a 2-torsion point
                        X, Y, Z = 0, 1, 0
                        continue
                    ysq = Y * Y % p
                    s = 4 * X * ysq % p
                    m = (3 * (X * X) + zsq * zsq) % p
                    nx = (m * m - 2 * s) % p
                    nz = 2 * Y * Z % p
                    Y = (m * (s - nx) - 8 * (ysq * ysq)) % p
                    X, Z = nx, nz
                    continue
                hh = (u2 - X) % p
                rr = (s2 - Y) % p
                hsq = hh * hh % p
                hcu = hsq * hh % p
                nx = (rr * rr - hcu - 2 * X * hsq) % p
                nz = hh * Z % p
                Y = (rr * (X * hsq - nx) - Y * hcu) % p
                X, Z = nx, nz
        return self.curve._jacobian_to_affine(X, Y, Z)


def _affine_odd_multiples(curve: Curve, point: Point, count: int
                          ) -> Optional[List[Tuple[int, int]]]:
    """Affine ``[1P, 3P, ..., (2*count-1)P]`` via one batched inversion."""
    if point.is_infinity():
        return None
    jacobian = curve._odd_multiples(point, count)
    p = curve.p
    zinvs = batch_inverse([z for _x, _y, z in jacobian], p)
    odds: List[Tuple[int, int]] = []
    for (jx, jy, jz), zi in zip(jacobian, zinvs):
        zi2 = zi * zi % p
        odds.append((jx * zi2 % p, jy * zi2 % p * zi % p))
    return odds

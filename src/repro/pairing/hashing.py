"""Hash functions with group and scalar-field ranges.

The PEACE scheme needs two random oracles (paper Section IV.A):

* ``H0`` with range G2 x G2 -- produces the per-signature generators
  ``(u_hat, v_hat)``; implemented as two domain-separated hash-to-curve
  invocations (try-and-increment with cofactor clearing).
* ``H`` with range Z_p (our ``Z_r``) -- the Fiat-Shamir challenge.

Both are built on SHA-256 with explicit domain-separation tags so the
two oracles are independent, as the random-oracle model requires.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.pairing.curve import Curve, Point

DOMAIN_H0_U = b"repro/peace/H0/u"
DOMAIN_H0_V = b"repro/peace/H0/v"
DOMAIN_H = b"repro/peace/H"
DOMAIN_G = b"repro/peace/generator"


def _digest_stream(domain: bytes, data: bytes, field_bytes: int):
    """Return a ``counter -> bytes`` callable for try-and-increment."""

    def stream(counter: int) -> bytes:
        material = b""
        block = 0
        while len(material) < field_bytes + 1:
            h = hashlib.sha256()
            h.update(domain)
            h.update(counter.to_bytes(4, "big"))
            h.update(block.to_bytes(4, "big"))
            h.update(data)
            material += h.digest()
            block += 1
        return material[:field_bytes + 1]

    return stream


def hash_to_point(curve: Curve, domain: bytes, data: bytes) -> Point:
    """Map ``data`` to a point of the order-``r`` subgroup."""
    stream = _digest_stream(domain, data, curve.params.field_bytes)
    return curve.point_from_digest_stream(stream)


def hash_h0(curve: Curve, data: bytes) -> Tuple[Point, Point]:
    """The paper's ``H0``: map ``data`` to a pair of G2 points."""
    return (hash_to_point(curve, DOMAIN_H0_U, data),
            hash_to_point(curve, DOMAIN_H0_V, data))


def hash_to_scalar(order: int, data: bytes, domain: bytes = DOMAIN_H) -> int:
    """The paper's ``H``: map ``data`` to a nonzero scalar in Z_order.

    Expands SHA-256 output to cover the scalar width with negligible
    bias (64 surplus bits), then reduces.
    """
    width = (order.bit_length() + 7) // 8 + 8
    material = b""
    block = 0
    while len(material) < width:
        h = hashlib.sha256()
        h.update(domain)
        h.update(block.to_bytes(4, "big"))
        h.update(data)
        material += h.digest()
        block += 1
    value = int.from_bytes(material[:width], "big") % order
    return value if value != 0 else 1

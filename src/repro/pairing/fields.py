"""Quadratic extension field F_p2 = F_p[i] / (i^2 + 1).

Because every pairing curve in this package uses ``p = 3 (mod 4)``, the
polynomial ``i^2 + 1`` is irreducible over F_p and this representation is
always valid.  Elements are immutable ``a + b*i`` pairs.

The Miller loop in :mod:`repro.pairing.tate` works on raw integer pairs
for speed; this class is the boundary representation used by GT elements
and by tests/property checks.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ParameterError


class Fp2:
    """An element ``a + b*i`` of F_p2 with ``i^2 = -1``."""

    __slots__ = ("a", "b", "p")

    def __init__(self, a: int, b: int, p: int) -> None:
        self.a = a % p
        self.b = b % p
        self.p = p

    # -- constructors -------------------------------------------------

    @classmethod
    def one(cls, p: int) -> "Fp2":
        """Multiplicative identity."""
        return cls(1, 0, p)

    @classmethod
    def zero(cls, p: int) -> "Fp2":
        """Additive identity."""
        return cls(0, 0, p)

    # -- predicates ---------------------------------------------------

    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    # -- arithmetic ---------------------------------------------------

    def _check(self, other: "Fp2") -> None:
        if self.p != other.p:
            raise ParameterError("mixed-field Fp2 arithmetic")

    def __add__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.a + other.a, self.b + other.b, self.p)

    def __sub__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.a - other.a, self.b - other.b, self.p)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.a, -self.b, self.p)

    def __mul__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        a, b, c, d, p = self.a, self.b, other.a, other.b, self.p
        # (a + bi)(c + di) = (ac - bd) + (ad + bc) i
        return Fp2((a * c - b * d) % p, (a * d + b * c) % p, p)

    def square(self) -> "Fp2":
        """Return self^2 using the (a+b)(a-b) shortcut."""
        a, b, p = self.a, self.b, self.p
        return Fp2((a + b) * (a - b) % p, 2 * a * b % p, p)

    def conjugate(self) -> "Fp2":
        """Return ``a - b*i`` -- this is also self^p (the Frobenius)."""
        return Fp2(self.a, -self.b, self.p)

    def norm(self) -> int:
        """Return the field norm ``a^2 + b^2`` in F_p."""
        return (self.a * self.a + self.b * self.b) % self.p

    def inverse(self) -> "Fp2":
        """Return the multiplicative inverse.

        Uses ``x^-1 = conj(x) / norm(x)``; raises
        :class:`ParameterError` on zero.
        """
        n = self.norm()
        if n == 0:
            raise ParameterError("inverting zero in Fp2")
        n_inv = pow(n, -1, self.p)
        return Fp2(self.a * n_inv, -self.b * n_inv, self.p)

    def __truediv__(self, other: "Fp2") -> "Fp2":
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result_a, result_b = 1, 0
        base_a, base_b = self.a, self.b
        p = self.p
        e = exponent
        while e:
            if e & 1:
                result_a, result_b = ((result_a * base_a - result_b * base_b)
                                      % p,
                                      (result_a * base_b + result_b * base_a)
                                      % p)
            base_a, base_b = ((base_a + base_b) * (base_a - base_b) % p,
                              2 * base_a * base_b % p)
            e >>= 1
        return Fp2(result_a, result_b, p)

    # -- comparison / hashing ------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp2):
            return NotImplemented
        return (self.a, self.b, self.p) == (other.a, other.b, other.p)

    def __hash__(self) -> int:
        return hash((self.a, self.b, self.p))

    def as_tuple(self) -> Tuple[int, int]:
        """Return the raw ``(a, b)`` coefficient pair."""
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fp2({self.a:#x}, {self.b:#x})"

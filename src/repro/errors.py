"""Exception hierarchy for the PEACE reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.  Protocol
failures are deliberately split into fine-grained classes because the
benchmarks and attack-evaluation harnesses count *why* a handshake was
rejected (bad signature vs. revoked key vs. stale timestamp, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ParameterError(ReproError):
    """A cryptographic parameter set is malformed or inconsistent."""


class EncodingError(ReproError):
    """Serialization or deserialization of a wire object failed."""


class NotOnCurveError(ReproError):
    """A claimed elliptic-curve point does not satisfy the curve equation."""


class SignatureError(ReproError):
    """Base class for signature-verification failures."""


class InvalidSignature(SignatureError):
    """A (group or standard) signature failed verification."""


class RevokedKeyError(SignatureError):
    """A group signature was produced by a revoked group private key."""


class CertificateError(ReproError):
    """A certificate is invalid, expired, or revoked."""


class ProtocolError(ReproError):
    """Base class for authentication / key-agreement protocol failures."""


class ReplayError(ProtocolError):
    """A message failed its timestamp / nonce freshness check."""


class AuthenticationError(ProtocolError):
    """The peer failed to authenticate."""


class PuzzleError(ProtocolError):
    """A client-puzzle solution is missing or wrong."""


class SessionError(ProtocolError):
    """A data-plane session operation failed (bad MAC, unknown session)."""


class DegradedModeError(ProtocolError):
    """A router with a severed operator channel is past its staleness
    grace window and refuses service rather than act on stale lists."""


class AuditError(ReproError):
    """An audit or tracing operation could not complete."""


class SimulationError(ReproError):
    """The WMN simulator was driven into an inconsistent state."""


class FaultInjectionError(SimulationError):
    """A fault plan is malformed or an injector was armed incorrectly."""

"""Operation-count instrumentation.

The paper's performance analysis (Section V.C) is stated in abstract
operation counts -- "signature generation requires about 8 exponentiations
and 2 bilinear map computations" -- rather than wall-clock time.  To
reproduce those claims the cryptographic layers report every expensive
operation to an ambient :class:`OpCounter`, installed with the
:func:`count_operations` context manager:

    with count_operations() as ops:
        signature = sign(gpk, gsk, message)
    assert ops.total("exp") == 8 and ops.total("pairing") == 2

Counting is thread-local so concurrent benchmark workers do not observe
each other's operations.  When no counter is installed the hooks are
near-free (a single attribute check).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator

#: Event categories used throughout the package.  "exp" covers
#: exponentiations and multi-exponentiations in G1/G2 (the paper counts a
#: multi-exponentiation as one exponentiation), "psi" the G2->G1
#: isomorphism (the paper prices it like a G1 exponentiation), "pairing"
#: bilinear map evaluations, and "exp_gt" exponentiations in GT.
KNOWN_EVENTS = ("exp", "psi", "pairing", "exp_gt", "hash_to_group",
                "ecdsa_sign", "ecdsa_verify", "aes_block", "sym_encrypt",
                "sym_decrypt", "mac")

_LOCAL = threading.local()

#: Optional bridge into the observability span log: when set (by
#: ``repro.obs.install``), every :func:`note` also attributes the event
#: to the innermost open trace span.  Kept as a single module global so
#: the disabled path costs one load + one ``is None`` check.
_SPAN_SINK = None


def set_span_sink(sink) -> None:
    """Install/clear the span-attribution callback ``sink(event, amount)``.

    Owned by :func:`repro.obs.install`; anything else setting it will be
    clobbered by the next registry install/uninstall.
    """
    global _SPAN_SINK
    _SPAN_SINK = sink


class OpCounter:
    """Mutable tally of cryptographic operation events."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def note(self, event: str, amount: int = 1) -> None:
        """Record ``amount`` occurrences of ``event``."""
        self.counts[event] = self.counts.get(event, 0) + amount

    def total(self, event: str) -> int:
        """Return the tally for ``event`` (0 when never seen)."""
        return self.counts.get(event, 0)

    def exponentiations(self) -> int:
        """Paper-style exponentiation count: G1/G2 exps plus psi maps."""
        return self.total("exp") + self.total("psi")

    def pairings(self) -> int:
        """Number of bilinear map evaluations."""
        return self.total("pairing")

    def snapshot(self) -> Dict[str, int]:
        """Return a copy of the raw tallies."""
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpCounter({inner})"


def current_counter() -> "OpCounter | None":
    """Return the counter installed on this thread, if any."""
    return getattr(_LOCAL, "counter", None)


def note(event: str, amount: int = 1) -> None:
    """Report an operation to the ambient counter (no-op when absent)
    and, when an obs registry is installed, to the active trace span."""
    counter = getattr(_LOCAL, "counter", None)
    if counter is not None:
        counter.note(event, amount)
    sink = _SPAN_SINK
    if sink is not None:
        sink(event, amount)


def replay(event: str, amount: int = 1) -> None:
    """Re-apply an *already-attributed* tally to the ambient counter only.

    The verifier pool ships per-item op tallies (and span records that
    already carry them) back from worker processes; folding those
    tallies into the parent's :class:`OpCounter` must not ALSO hit the
    span sink, or every operation would be attributed twice -- once in
    the worker's span and once in whatever span is open on the parent
    thread.  Use :func:`note` for operations happening *here*,
    :func:`replay` for operations that happened elsewhere.
    """
    counter = getattr(_LOCAL, "counter", None)
    if counter is not None:
        counter.note(event, amount)


@contextmanager
def count_operations() -> Iterator[OpCounter]:
    """Install a fresh :class:`OpCounter` for the dynamic extent.

    Nesting replaces the counter for the inner block; the outer counter
    resumes (without the inner tallies) when the block exits.  The
    benchmarks rely on this to isolate per-phase counts.
    """
    previous = getattr(_LOCAL, "counter", None)
    counter = OpCounter()
    _LOCAL.counter = counter
    try:
        yield counter
    finally:
        _LOCAL.counter = previous

"""Standard (non-group) signature substrate.

PEACE uses ECDSA-160 for network-operator and mesh-router signatures
(certificates, CRL/URL, beacons, non-repudiation receipts) and compares
its group-signature length against RSA-1024; both primitives are
implemented here from scratch.
"""

from repro.sig.curves import SECP160R1, SECP256R1, WeierstrassCurve, get_curve
from repro.sig.ecdsa import EcdsaKeyPair, EcdsaPublicKey, ecdsa_generate
from repro.sig.rsa import RsaKeyPair, RsaPublicKey, rsa_generate

__all__ = [
    "EcdsaKeyPair",
    "EcdsaPublicKey",
    "RsaKeyPair",
    "RsaPublicKey",
    "SECP160R1",
    "SECP256R1",
    "WeierstrassCurve",
    "ecdsa_generate",
    "get_curve",
    "rsa_generate",
]

"""RSA PKCS#1 v1.5 signatures.

Only present as the paper's comparison baseline: Section V.C argues the
PEACE group signature (1,192 bits) is "almost the same" length as an
RSA-1024 signature (1,024 bits / 128 bytes).  The size benchmark signs
real messages with both schemes and measures the encoded artifacts.
"""

from __future__ import annotations

import hashlib
import random
import secrets
from dataclasses import dataclass

from repro.errors import EncodingError, InvalidSignature, ParameterError
from repro.mathx import bytes_to_int, crt_pair, int_to_bytes, inv_mod, random_prime

#: DER DigestInfo prefix for SHA-256 (RFC 8017, section 9.2 notes).
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA verification key (n, e)."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        if len(signature) != self.modulus_bytes:
            return False
        s = bytes_to_int(signature)
        if s >= self.n:
            return False
        em = int_to_bytes(pow(s, self.e, self.n), self.modulus_bytes)
        return em == _emsa_pkcs1_v15(message, self.modulus_bytes)

    def require_valid(self, message: bytes, signature: bytes) -> None:
        if not self.verify(message, signature):
            raise InvalidSignature("RSA verification failed")


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA signing key with CRT parameters."""

    public: RsaPublicKey
    d: int
    p: int
    q: int

    def sign(self, message: bytes) -> bytes:
        em = _emsa_pkcs1_v15(message, self.public.modulus_bytes)
        m = bytes_to_int(em)
        # CRT signing: ~4x faster than a full-width exponentiation.
        sp = pow(m % self.p, self.d % (self.p - 1), self.p)
        sq = pow(m % self.q, self.d % (self.q - 1), self.q)
        s = crt_pair(sp, self.p, sq, self.q)
        return int_to_bytes(s, self.public.modulus_bytes)


def _emsa_pkcs1_v15(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding with SHA-256."""
    t = _SHA256_PREFIX + hashlib.sha256(message).digest()
    if em_len < len(t) + 11:
        raise EncodingError("RSA modulus too small for SHA-256 PKCS#1 v1.5")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def rsa_generate(bits: int = 1024, e: int = 65537,
                 rng=None) -> RsaKeyPair:
    """Generate an RSA key pair of the requested modulus size.

    ``rng`` may be a :class:`random.Random` for reproducible test keys;
    production-style entropy otherwise.
    """
    if bits < 512:
        raise ParameterError("refusing RSA modulus below 512 bits")
    rng = rng or random.Random(secrets.randbits(256))
    half = bits // 2
    while True:
        p = random_prime(half, rng=rng)
        q = random_prime(bits - half, rng=rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = inv_mod(e, phi)
        except ParameterError:
            continue
        return RsaKeyPair(RsaPublicKey(n, e), d, p, q)

"""ECDSA with deterministic (RFC 6979) nonces.

The paper stipulates ECDSA-160 for every conventional signature: mesh
router certificates, CRL / URL signatures, beacon signatures, and the
non-repudiation receipts exchanged during setup.  Deterministic nonces
remove the classic nonce-reuse footgun and make test vectors stable.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Tuple

from repro import instrument
from repro.errors import EncodingError, InvalidSignature, NotOnCurveError
from repro.mathx import bytes_to_int, int_to_bytes
from repro.sig.curves import SECP160R1, WeierstrassCurve


def _bits2int(data: bytes, n: int) -> int:
    """Leftmost-bits conversion of a hash to an integer (RFC 6979 2.3.2)."""
    value = bytes_to_int(data)
    excess = len(data) * 8 - n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(curve: WeierstrassCurve, private: int,
                   digest: bytes) -> int:
    """Derive the per-signature nonce k deterministically (RFC 6979)."""
    n = curve.n
    holen = hashlib.sha256().digest_size
    x_octets = int_to_bytes(private, curve.scalar_bytes)
    h1 = _bits2int(digest, n) % n
    h1_octets = int_to_bytes(h1, curve.scalar_bytes)
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x_octets + h1_octets, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x_octets + h1_octets, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        t = b""
        while len(t) < curve.scalar_bytes:
            v = hmac.new(k, v, hashlib.sha256).digest()
            t += v
        candidate = _bits2int(t[:curve.scalar_bytes], n)
        if 1 <= candidate < n:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


@dataclass(frozen=True)
class EcdsaPublicKey:
    """An ECDSA verification key."""

    curve: WeierstrassCurve
    point: Tuple[int, int]

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify; returns False rather than raising for bad signatures."""
        instrument.note("ecdsa_verify")
        try:
            r, s = decode_signature(self.curve, signature)
        except EncodingError:
            return False
        n = self.curve.n
        if not (1 <= r < n and 1 <= s < n):
            return False
        digest = hashlib.sha256(message).digest()
        e = _bits2int(digest, n) % n
        w = pow(s, -1, n)
        u1 = e * w % n
        u2 = r * w % n
        point = self.curve.scalar_mul_two(self.curve.generator, u1,
                                          self.point, u2)
        if point is None:
            return False
        return point[0] % n == r

    def require_valid(self, message: bytes, signature: bytes) -> None:
        """Verify or raise :class:`InvalidSignature`."""
        if not self.verify(message, signature):
            raise InvalidSignature("ECDSA verification failed")

    def encode(self) -> bytes:
        """Uncompressed SEC-1 encoding (0x04 + x + y)."""
        size = self.curve.coordinate_bytes
        return (b"\x04" + int_to_bytes(self.point[0], size)
                + int_to_bytes(self.point[1], size))

    @classmethod
    def decode(cls, curve: WeierstrassCurve, data: bytes) -> "EcdsaPublicKey":
        size = curve.coordinate_bytes
        if len(data) != 1 + 2 * size or data[0] != 4:
            raise EncodingError("bad SEC-1 public key encoding")
        point = (bytes_to_int(data[1:1 + size]), bytes_to_int(data[1 + size:]))
        try:
            curve.require_on_curve(point)
        except NotOnCurveError as exc:
            raise EncodingError("public key not on curve") from exc
        return cls(curve, point)


@dataclass(frozen=True)
class EcdsaKeyPair:
    """An ECDSA signing key with its public half."""

    curve: WeierstrassCurve
    private: int
    public: EcdsaPublicKey

    def sign(self, message: bytes) -> bytes:
        """Produce a fixed-width ``r || s`` signature over SHA-256(message)."""
        instrument.note("ecdsa_sign")
        n = self.curve.n
        digest = hashlib.sha256(message).digest()
        e = _bits2int(digest, n) % n
        while True:
            k = _rfc6979_nonce(self.curve, self.private, digest)
            point = self.curve.scalar_mul(self.curve.generator, k)
            assert point is not None
            r = point[0] % n
            if r == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            s = pow(k, -1, n) * (e + r * self.private) % n
            if s == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            return encode_signature(self.curve, r, s)


def encode_signature(curve: WeierstrassCurve, r: int, s: int) -> bytes:
    """Fixed-width concatenation ``r || s`` (2 * scalar_bytes)."""
    size = curve.scalar_bytes
    return int_to_bytes(r, size) + int_to_bytes(s, size)


def decode_signature(curve: WeierstrassCurve,
                     data: bytes) -> Tuple[int, int]:
    size = curve.scalar_bytes
    if len(data) != 2 * size:
        raise EncodingError(
            f"ECDSA signature must be {2 * size} bytes, got {len(data)}")
    return bytes_to_int(data[:size]), bytes_to_int(data[size:])


def signature_bytes(curve: WeierstrassCurve = SECP160R1) -> int:
    """Serialized ECDSA signature size for ``curve`` (42 B for ECDSA-160)."""
    return 2 * curve.scalar_bytes


def ecdsa_generate(curve: WeierstrassCurve = SECP160R1,
                   rng=None) -> EcdsaKeyPair:
    """Generate a key pair; ``rng`` (with ``randrange``) makes it
    deterministic for tests, otherwise a CSPRNG is used."""
    if rng is None:
        private = secrets.randbelow(curve.n - 1) + 1
    else:
        private = rng.randrange(1, curve.n)
    point = curve.scalar_mul(curve.generator, private)
    assert point is not None
    return EcdsaKeyPair(curve, private, EcdsaPublicKey(curve, point))

"""Short-Weierstrass curves and point arithmetic for ECDSA.

Implements ``y^2 = x^3 + a*x + b`` over F_p with Jacobian-coordinate
scalar multiplication.  Two SEC-2 curves are shipped: secp160r1 (the
"ECDSA-160" of the paper) and secp256r1 for a modern comparison point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import NotOnCurveError, ParameterError

#: Affine point as (x, y); ``None`` is the point at infinity.
AffinePoint = Optional[Tuple[int, int]]


@dataclass(frozen=True)
class WeierstrassCurve:
    """Domain parameters of a prime-field short-Weierstrass curve."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int   # order of the base point
    h: int   # cofactor

    # -- validation ------------------------------------------------------

    def is_on_curve(self, point: AffinePoint) -> bool:
        if point is None:
            return True
        x, y = point
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def require_on_curve(self, point: AffinePoint) -> AffinePoint:
        if not self.is_on_curve(point):
            raise NotOnCurveError(f"point not on {self.name}")
        return point

    @property
    def generator(self) -> AffinePoint:
        return (self.gx, self.gy)

    @property
    def coordinate_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8

    @property
    def scalar_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    # -- affine group law (reference implementation, used by tests) -------

    def affine_add(self, lhs: AffinePoint, rhs: AffinePoint) -> AffinePoint:
        if lhs is None:
            return rhs
        if rhs is None:
            return lhs
        p = self.p
        x1, y1 = lhs
        x2, y2 = rhs
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return None
            slope = (3 * x1 * x1 + self.a) * pow(2 * y1, -1, p) % p
        else:
            slope = (y2 - y1) * pow(x2 - x1, -1, p) % p
        x3 = (slope * slope - x1 - x2) % p
        return (x3, (slope * (x1 - x3) - y1) % p)

    def affine_neg(self, point: AffinePoint) -> AffinePoint:
        if point is None:
            return None
        return (point[0], (-point[1]) % self.p)

    # -- Jacobian scalar multiplication ------------------------------------

    def scalar_mul(self, point: AffinePoint, k: int) -> AffinePoint:
        """Return ``k * point`` using Jacobian double-and-add."""
        if point is None or k % self.n == 0:
            return None
        k %= self.n
        jx, jy, jz = point[0], point[1], 1
        rx, ry, rz = 0, 1, 0  # Jacobian infinity
        while k:
            if k & 1:
                rx, ry, rz = self._jadd(rx, ry, rz, jx, jy, jz)
            jx, jy, jz = self._jdouble(jx, jy, jz)
            k >>= 1
        return self._to_affine(rx, ry, rz)

    def scalar_mul_two(self, point_a: AffinePoint, k_a: int,
                       point_b: AffinePoint, k_b: int) -> AffinePoint:
        """Return ``k_a * A + k_b * B`` (Shamir's trick would speed this
        up; ECDSA verification latency is not on the paper's critical
        path so the simple composition suffices)."""
        return self.affine_add_jacobianless(
            self.scalar_mul(point_a, k_a), self.scalar_mul(point_b, k_b))

    def affine_add_jacobianless(self, lhs: AffinePoint,
                                rhs: AffinePoint) -> AffinePoint:
        return self.affine_add(lhs, rhs)

    def _jdouble(self, x, y, z):
        p = self.p
        if z == 0 or y == 0:
            return (0, 1, 0)
        ysq = y * y % p
        s = 4 * x * ysq % p
        zsq = z * z % p
        m = (3 * x * x + self.a * zsq * zsq) % p
        nx = (m * m - 2 * s) % p
        ny = (m * (s - nx) - 8 * ysq * ysq) % p
        nz = 2 * y * z % p
        return (nx, ny, nz)

    def _jadd(self, x1, y1, z1, x2, y2, z2):
        p = self.p
        if z1 == 0:
            return (x2, y2, z2)
        if z2 == 0:
            return (x1, y1, z1)
        z1sq = z1 * z1 % p
        z2sq = z2 * z2 % p
        u1 = x1 * z2sq % p
        u2 = x2 * z1sq % p
        s1 = y1 * z2sq * z2 % p
        s2 = y2 * z1sq * z1 % p
        if u1 == u2:
            if s1 != s2:
                return (0, 1, 0)
            return self._jdouble(x1, y1, z1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        hsq = h * h % p
        hcu = hsq * h % p
        nx = (r * r - hcu - 2 * u1 * hsq) % p
        ny = (r * (u1 * hsq - nx) - s1 * hcu) % p
        nz = h * z1 * z2 % p
        return (nx, ny, nz)

    def _to_affine(self, x, y, z) -> AffinePoint:
        if z == 0:
            return None
        p = self.p
        z_inv = pow(z, -1, p)
        z_inv_sq = z_inv * z_inv % p
        return (x * z_inv_sq % p, y * z_inv_sq * z_inv % p)


SECP160R1 = WeierstrassCurve(
    name="secp160r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFC,
    b=0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
    gx=0x4A96B5688EF573284664698968C38BB913CBFC82,
    gy=0x23A628553168947D59DCC912042351377AC5FB32,
    n=0x0100000000000000000001F4C8F927AED3CA752257,
    h=1,
)

SECP256R1 = WeierstrassCurve(
    name="secp256r1",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
)

_CURVES = {c.name: c for c in (SECP160R1, SECP256R1)}


def get_curve(name: str) -> WeierstrassCurve:
    """Look up a shipped curve by SEC-2 name."""
    try:
        return _CURVES[name]
    except KeyError as exc:
        raise ParameterError(
            f"unknown curve {name!r}; choose one of {sorted(_CURVES)}"
        ) from exc

#!/bin/sh
# Tier-1 verification for this repo, plus a quick engine smoke check.
#
# Usage:
#   scripts/tier1.sh          # full tier-1 suite (the gate PRs must pass)
#   scripts/tier1.sh smoke    # ~15s subset: engine/pool cross-checks only
#
# The smoke subset runs the TestSmoke classes, which compare every
# engine fast path (pairing tables, fixed-base tables, wNAF multi-exp,
# batch verification, the multi-process verifier pool) against the
# naive reference computation.

set -e
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [ "$1" = "smoke" ]; then
    exec python -m pytest -x -q \
        tests/test_pairing_precompute.py::TestSmoke \
        tests/test_groupsig_batch.py::TestSmoke \
        tests/test_verifier_pool.py::TestSmoke
fi

exec python -m pytest -x -q

#!/bin/sh
# Tier-1 verification for this repo, plus a quick engine smoke check.
#
# Usage:
#   scripts/tier1.sh                      # full tier-1 suite (the gate)
#   scripts/tier1.sh smoke                # ~15s subset: engine/pool checks
#   scripts/tier1.sh [smoke] --junit X    # also write a JUnit XML report
#
# The smoke subset runs the TestSmoke classes, which compare every
# engine fast path (pairing tables, fixed-base tables, wNAF multi-exp,
# batch verification, the multi-process verifier pool) against the
# naive reference computation.

set -e
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

mode=""
junit=""
while [ $# -gt 0 ]; do
    case "$1" in
        smoke) mode="smoke"; shift ;;
        --junit)
            [ $# -ge 2 ] || { echo "tier1.sh: --junit needs a path" >&2
                              exit 2; }
            junit="--junit-xml=$2"; shift 2 ;;
        *) echo "tier1.sh: unknown argument: $1" >&2; exit 2 ;;
    esac
done

if [ "$mode" = "smoke" ]; then
    exec python -m pytest -x -q ${junit:+"$junit"} \
        tests/test_pairing_precompute.py::TestSmoke \
        tests/test_groupsig_batch.py::TestSmoke \
        tests/test_verifier_pool.py::TestSmoke
fi

exec python -m pytest -x -q ${junit:+"$junit"}

#!/bin/sh
# Tier-1 verification for this repo, plus a quick engine smoke check.
#
# Usage:
#   scripts/tier1.sh                      # full tier-1 suite (the gate)
#   scripts/tier1.sh smoke                # ~15s subset: engine/pool checks
#   scripts/tier1.sh chaos                # fault-injection suite (3 seeds)
#   scripts/tier1.sh [mode] --junit X     # also write a JUnit XML report
#
# The smoke subset runs the TestSmoke classes, which compare every
# engine fast path (pairing tables, fixed-base tables, wNAF multi-exp,
# batch verification, the multi-process verifier pool) against the
# naive reference computation.
#
# The chaos subset runs the seeded fault-injection suites (radio
# drop/duplicate/corrupt/delay, verifier-pool worker kill/hang,
# router degraded mode, durable-journal corruption, and crash/restart
# recovery) across the three fixed CI seeds.

set -e
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

mode=""
junit=""
while [ $# -gt 0 ]; do
    case "$1" in
        smoke) mode="smoke"; shift ;;
        chaos) mode="chaos"; shift ;;
        --junit)
            [ $# -ge 2 ] || { echo "tier1.sh: --junit needs a path" >&2
                              exit 2; }
            junit="--junit-xml=$2"; shift 2 ;;
        *) echo "tier1.sh: unknown argument: $1" >&2; exit 2 ;;
    esac
done

if [ "$mode" = "smoke" ]; then
    python -m pytest -x -q ${junit:+"$junit"} \
        tests/test_pairing_precompute.py::TestSmoke \
        tests/test_groupsig_batch.py::TestSmoke \
        tests/test_verifier_pool.py::TestSmoke
    # obs-report smoke: the seeded traced scenario must produce at
    # least one stitched handshake trace and render it.
    python -m repro obs-report --workload scenario --format traces \
        --duration 40 > /tmp/obs-smoke.$$ \
        || { echo "tier1.sh: obs-report smoke failed" >&2; exit 1; }
    grep -q "^trace " /tmp/obs-smoke.$$ \
        || { echo "tier1.sh: obs-report produced no traces" >&2
             rm -f /tmp/obs-smoke.$$; exit 1; }
    rm -f /tmp/obs-smoke.$$
    echo "tier1.sh: obs-report smoke OK"
    # Health observatory smoke: the seeded chaos scenario must detect
    # its injected faults and render incident timelines.
    python -m repro obs-report --format incidents > /tmp/obs-smoke.$$ \
        || { echo "tier1.sh: obs-report incidents smoke failed" >&2
             exit 1; }
    grep -q "^incident " /tmp/obs-smoke.$$ \
        || { echo "tier1.sh: obs-report produced no incidents" >&2
             rm -f /tmp/obs-smoke.$$; exit 1; }
    rm -f /tmp/obs-smoke.$$
    echo "tier1.sh: obs-report incidents smoke OK"
    exit 0
fi

if [ "$mode" = "chaos" ]; then
    exec python -m pytest -x -q ${junit:+"$junit"} \
        tests/test_faults.py \
        tests/test_chaos_handshake.py \
        tests/test_pool_recovery.py \
        tests/test_durable.py \
        tests/test_durable_fuzz.py \
        tests/test_crash_recovery.py
fi

exec python -m pytest -x -q ${junit:+"$junit"}

#!/bin/sh
# Static gates for this repo.
#
# 1. Everything must byte-compile (catches syntax errors in files the
#    test run never imports).
# 2. Wall-clock discipline: repro.core.clock.SystemClock is the single
#    permitted time.time() call site.  Everything else takes a Clock so
#    experiments run on ManualClock and stay deterministic; a stray
#    time.time() silently breaks replay/freshness tests under time
#    travel.

set -e
cd "$(dirname "$0")/.."

python -m compileall -q src tests benchmarks

violations=$(grep -rn "time\.time()" src --include='*.py' \
             | grep -v "repro/core/clock.py" || true)
if [ -n "$violations" ]; then
    echo "lint: time.time() outside repro/core/clock.py:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "lint: OK"

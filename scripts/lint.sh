#!/bin/sh
# Static gates for this repo.
#
# 1. Everything must byte-compile (catches syntax errors in files the
#    test run never imports).
# 2. Wall-clock discipline: repro.core.clock.SystemClock is the single
#    permitted time.time() call site.  Everything else takes a Clock so
#    experiments run on ManualClock and stay deterministic; a stray
#    time.time() silently breaks replay/freshness tests under time
#    travel.
# 3. Output discipline: the library never prints.  __main__.py is the
#    CLI and owns stdout; everything else returns strings (see
#    repro/obs/report.py) so callers and tests stay capture-clean.
# 4. Repo hygiene: no bytecode and no benchmark scratch output in the
#    index.  __pycache__/*.pyc and benchmarks/reports/ churn on every
#    run and bloat diffs; .gitignore keeps new ones out, this gate
#    keeps them from ever coming back (BENCH_*.json baselines at the
#    repo root are the one committed benchmark artifact).

set -e
cd "$(dirname "$0")/.."

python -m compileall -q src tests benchmarks

violations=$(grep -rn "time\.time()" src --include='*.py' \
             | grep -v "repro/core/clock.py" || true)
if [ -n "$violations" ]; then
    echo "lint: time.time() outside repro/core/clock.py:" >&2
    echo "$violations" >&2
    exit 1
fi

# Replayable chaos: the fault-injection package must be a pure
# function of (plan seed, virtual clock).  Stronger than the global
# time.time() gate above -- repro.faults may not import the wall-clock
# module at all (monotonic(), perf_counter(), sleep() would all smuggle
# host timing into fault decisions and break replay).
wallclock=$(grep -rnE '(^|[^a-zA-Z0-9_.])(import time|from time import)' \
            src/repro/faults --include='*.py' || true)
if [ -n "$wallclock" ]; then
    echo "lint: wall-clock import in repro/faults (chaos must replay):" >&2
    echo "$wallclock" >&2
    exit 1
fi

# Word-boundary match so e.g. fingerprint( does not trip the gate.
prints=$(grep -rnE '(^|[^a-zA-Z0-9_.])print\(' src/repro --include='*.py' \
         | grep -v "repro/__main__.py" || true)
if [ -n "$prints" ]; then
    echo "lint: print() in library code (only __main__.py may print):" >&2
    echo "$prints" >&2
    exit 1
fi

bytecode=$(git ls-files | grep -E '(\.pyc$|__pycache__/)' || true)
if [ -n "$bytecode" ]; then
    echo "lint: committed bytecode (run: git rm -r --cached <paths>):" >&2
    echo "$bytecode" >&2
    exit 1
fi

# Orphaned bytecode: a .pyc whose source .py is gone (e.g. a module
# was renamed or deleted) still imports happily from __pycache__,
# masking broken imports locally that CI's clean checkout will catch.
# Fail on any cached .pyc with no matching source file.
orphans=$(find src tests benchmarks -name '*.pyc' 2>/dev/null \
          | while read -r pyc; do
              base=$(basename "$pyc")
              module=${base%%.*}
              case "$pyc" in
                  */__pycache__/*) src_dir=$(dirname "$(dirname "$pyc")") ;;
                  *) src_dir=$(dirname "$pyc") ;;
              esac
              [ -f "$src_dir/$module.py" ] || echo "$pyc"
          done)
if [ -n "$orphans" ]; then
    echo "lint: orphaned bytecode without matching .py source (run:" >&2
    echo "      rm <paths>):" >&2
    echo "$orphans" >&2
    exit 1
fi

scratch=$(git ls-files | grep -E '^benchmarks/reports/' || true)
if [ -n "$scratch" ]; then
    echo "lint: committed benchmark scratch output (run:" >&2
    echo "      git rm -r --cached benchmarks/reports):" >&2
    echo "$scratch" >&2
    exit 1
fi

echo "lint: OK"

#!/usr/bin/env python
"""CI crash/restart chaos driver: durable city scenarios under churn.

For each chaos seed this script runs the same durable, sharded,
gossiping 4-router scenario **twice** with an identical fault plan --
an fsync-lossy power cut, two staggered router kills, two restarts --
and requires the runs to replay bit-identically: same connection
outcomes, same per-router/user counters, same list versions, same
recovery summaries, same injected-fault tallies.  Any divergence is a
determinism regression in the recovery path and fails the job.

Artifacts (written into ``--out``):

* ``recovery-summary.json`` -- per-seed fingerprints, recovery
  summaries (records replayed, torn bytes), fault tallies, and the
  replay-identity verdict.
* ``telemetry-<seed>.jsonl`` -- windowed telemetry rollups from the
  first run of each seed (handshake outcomes, gossip traffic,
  recovery counters), one JSON object per window.
* ``incidents-<seed>.jsonl`` -- fault-correlated incident timelines
  with MTTD/MTTR from the health observatory, one JSON object per
  incident.  The incident list and the injector's fault-event log are
  part of the replay fingerprint, so detection timing diverging
  between runs also fails the job.

Usage: python scripts/chaos_recovery_run.py [--out DIR] [--seeds 101,202]
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.protocols.user_router import RetryPolicy  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultInjector,
    FaultPlan,
    RouterFault,
    StorageFault,
)
from repro.wmn.scenario import Scenario, ScenarioConfig  # noqa: E402
from repro.wmn.topology import TopologyConfig  # noqa: E402

CHAOS_SEEDS = (101, 202, 303)
DURATION = 240.0

RETRY = RetryPolicy(initial_timeout=2.0, backoff_factor=2.0,
                    max_timeout=8.0, max_retries=4, jitter=0.1)


def build_scenario(seed: int) -> Scenario:
    """The durable 4-router city under 15% loss (mirrors the tier-1
    chaos suite's ``crash_scenario`` so CI artifacts describe the same
    system the tests gate)."""
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=800.0, router_grid=2,
                                user_count=6, seed=seed,
                                access_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=4.0,
        loss_probability=0.15,
        retry_policy=RETRY,
        durable=True,
        sharded_revocation=True,
        gossip_period=20.0,
        gossip_checkpoints=True,
        telemetry_window=30.0,
        health=True))
    for user in scenario.sim_users.values():
        user.connect_timeout = 60.0
    return scenario


def build_plan(seed: int, router_ids) -> FaultPlan:
    first, second = router_ids[0], router_ids[-1]
    return FaultPlan(
        seed=seed,
        router=(RouterFault("kill", at=40.0, router_id=first),
                RouterFault("restart", at=90.0, router_id=first),
                RouterFault("kill", at=60.0, router_id=second),
                RouterFault("restart", at=130.0, router_id=second)),
        storage=(StorageFault("fsync_loss", at=39.0, router_id=first),))


def run_once(seed: int):
    scenario = build_scenario(seed)
    ids = sorted(scenario.sim_routers)
    injector = FaultInjector(build_plan(seed, ids))
    injector.arm_scenario(scenario)
    scenario.run(DURATION)
    scenario.publish_metrics()
    fingerprint = {
        "connected": scenario.connected_fraction(),
        "router_metrics": scenario.router_metrics(),
        "user_metrics": scenario.user_metrics(),
        "versions": {rid: list(sim.router.list_versions())
                     for rid, sim in scenario.sim_routers.items()},
        "recoveries": {rid: sim.router.recovery.summary
                       for rid, sim in scenario.sim_routers.items()
                       if sim.router.recovery is not None},
        "injected": injector.snapshot(),
        "fault_events": injector.events_snapshot(),
        "incidents": scenario.incidents(injector),
        "alerts": scenario.alert_events(),
    }
    return fingerprint, scenario, injector


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the durable crash/restart chaos scenarios "
                    "twice per seed and verify bit-identical replay.")
    parser.add_argument("--out", default="chaos-recovery",
                        help="artifact directory (default: "
                             "chaos-recovery)")
    parser.add_argument("--seeds",
                        default=",".join(str(s) for s in CHAOS_SEEDS),
                        help="comma-separated chaos seeds")
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s]
    os.makedirs(args.out, exist_ok=True)

    summary = {"duration": DURATION, "seeds": seeds, "runs": {}}
    ok = True
    for seed in seeds:
        first, scenario, injector = run_once(seed)
        second, _, _ = run_once(seed)
        identical = first == second
        ok &= identical
        summary["runs"][str(seed)] = {
            "replay_identical": identical,
            "fingerprint": first,
            "divergence": None if identical else {
                "first": first, "second": second},
        }
        telemetry = scenario.telemetry_jsonl()
        path = os.path.join(args.out, f"telemetry-{seed}.jsonl")
        with open(path, "w") as handle:
            handle.write(telemetry)
        path = os.path.join(args.out, f"incidents-{seed}.jsonl")
        with open(path, "w") as handle:
            handle.write(scenario.incidents_jsonl(injector))
        detected = sum(1 for i in first["incidents"] if i["detected"])
        status = "identical" if identical else "DIVERGED"
        print(f"chaos-recovery: seed {seed}: {status} "
              f"({first['injected']} faults, "
              f"{len(first['recoveries'])} recoveries, "
              f"{detected}/{len(first['incidents'])} incidents "
              f"detected, connected {first['connected']:.2f})")

    summary["ok"] = ok
    with open(os.path.join(args.out, "recovery-summary.json"),
              "w") as handle:
        json.dump(summary, handle, indent=2, default=str)
        handle.write("\n")
    if not ok:
        print("chaos-recovery: replay divergence detected",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark regression gate: fresh BENCH_*.json runs vs committed baselines.

Each committed ``BENCH_<slug>.json`` at the repo root is a baseline.
The gate re-runs the benchmarks that produce a chosen subset of them
into a scratch directory (``BENCH_OUTPUT_DIR`` redirects the reporter,
so the committed files are never touched), then diffs the ``values``
dicts metric by metric under per-metric tolerance rules:

* ``exact``      -- value must match the baseline bit for bit
                    (operation counts, wire byte sizes, round counts).
* ``min_ratio``  -- fresh value must be at least ``ratio`` times the
                    baseline (speedups: generous floors absorb host
                    noise while still catching a lost optimization).
* ``max_ratio``  -- fresh value must stay under ``ratio`` times the
                    baseline (latencies, if ever gated).

Modes:

* ``--smoke``  -- E4 only: TEST-preset message sizes, deterministic
  and fast (seconds).  This is the CI pull-request gate.
* default      -- E4 plus E2 (SS512 operation counts; slower) plus the
  virtual-time handshake-loss sweep (exact completion counts).

Exit status is non-zero when any gated metric regresses beyond its
tolerance, when a fresh value for a gated metric is missing, or when
the bench run itself fails.  ``--fresh-dir`` skips the bench run and
diffs existing JSON in that directory (used by the unit tests).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: slug -> pytest node ids that (re)generate BENCH_<slug>.json.
BENCH_TARGETS: Dict[str, List[str]] = {
    "E4": ["benchmarks/bench_handshake.py::test_e4_rounds_and_bytes"],
    "E2": ["benchmarks/bench_op_counts.py::test_e2_operation_count_table"],
    "handshake_loss": [
        "benchmarks/bench_handshake_loss.py::test_handshake_loss_sweep"],
    "obs_overhead": [
        "benchmarks/bench_obs_overhead.py::test_obs_overhead"],
}

#: slug -> metric -> rule.  A rule is ``{"kind": "exact"}`` or
#: ``{"kind": "min_ratio"|"max_ratio", "ratio": float}``.  Metrics not
#: listed here are reported as informational, never gated.
GATES: Dict[str, Dict[str, dict]] = {
    "E4": {
        "bytes_M_1": {"kind": "exact"},
        "bytes_M_2": {"kind": "exact"},
        "bytes_M_3": {"kind": "exact"},
        "bytes_Mt_1": {"kind": "exact"},
        "bytes_Mt_2": {"kind": "exact"},
        "bytes_Mt_3": {"kind": "exact"},
        "bytes_group_signature": {"kind": "exact"},
        "rounds_per_protocol": {"kind": "exact"},
    },
    "E2": {
        "sign_exp": {"kind": "exact"},
        "sign_pair": {"kind": "exact"},
        "verify_url0_exp": {"kind": "exact"},
        "verify_url0_pair": {"kind": "exact"},
        "verify_url1_exp": {"kind": "exact"},
        "verify_url1_pair": {"kind": "exact"},
        "verify_url5_exp": {"kind": "exact"},
        "verify_url5_pair": {"kind": "exact"},
        "verify_url10_exp": {"kind": "exact"},
        "verify_url10_pair": {"kind": "exact"},
        "fast_verify_exp": {"kind": "exact"},
        "fast_verify_pair": {"kind": "exact"},
    },
    # The loss sweep runs entirely in virtual time on seeded RNGs, so
    # completion / attempt / retransmit counts are bit-deterministic;
    # median delays stay informational (float formatting only).
    "handshake_loss": {
        f"{metric}_loss{loss}_retry_{mode}": {"kind": "exact"}
        for metric in ("completed", "attempts", "retransmits")
        for loss in (0, 5, 15, 30)
        for mode in ("off", "on")
    },
    # Wall-clock overhead is host-dependent; the bench itself reduces
    # it to a pass/fail boolean with orders-of-magnitude headroom, and
    # the gate checks that boolean exactly.
    "obs_overhead": {
        "overhead_le_10pct": {"kind": "exact"},
        "iterations": {"kind": "exact"},
    },
}


def check_metric(name: str, rule: dict, baseline, fresh) -> Optional[str]:
    """One metric under one rule; returns a failure message or None."""
    if fresh is None:
        return f"{name}: missing from fresh run (baseline {baseline!r})"
    kind = rule["kind"]
    if kind == "exact":
        if fresh != baseline:
            return f"{name}: expected {baseline!r}, got {fresh!r}"
        return None
    if kind not in ("min_ratio", "max_ratio"):
        raise ValueError(f"unknown gate kind {kind!r} for {name}")
    ratio = float(rule["ratio"])
    baseline = float(baseline)
    fresh = float(fresh)
    if kind == "min_ratio":
        floor = baseline * ratio
        if fresh < floor:
            return (f"{name}: {fresh:.4g} below floor {floor:.4g} "
                    f"({ratio:g}x baseline {baseline:.4g})")
        return None
    ceiling = baseline * ratio
    if fresh > ceiling:
        return (f"{name}: {fresh:.4g} above ceiling {ceiling:.4g} "
                f"({ratio:g}x baseline {baseline:.4g})")
    return None


def compare(slug: str, baseline: dict, fresh: dict,
            gates: Optional[Dict[str, dict]] = None) -> dict:
    """Diff one experiment's values; returns a JSON-able result dict."""
    gates = GATES.get(slug, {}) if gates is None else gates
    base_values = baseline.get("values", {})
    fresh_values = fresh.get("values", {})
    failures = []
    checked = []
    for name, rule in sorted(gates.items()):
        if name not in base_values:
            # A gate with no committed baseline is a config error, not
            # a silent pass.
            failures.append(f"{name}: gated but absent from baseline")
            continue
        checked.append(name)
        message = check_metric(name, rule, base_values[name],
                               fresh_values.get(name))
        if message is not None:
            failures.append(message)
    informational = {name: {"baseline": base_values.get(name),
                            "fresh": fresh_values.get(name)}
                     for name in sorted(set(base_values) | set(fresh_values))
                     if name not in gates}
    return {"experiment": slug, "ok": not failures, "checked": checked,
            "failures": failures, "informational": informational}


def load_json(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def run_benches(slugs: List[str], out_dir: str) -> int:
    """Regenerate the selected BENCH files into ``out_dir``."""
    nodes = [node for slug in slugs for node in BENCH_TARGETS[slug]]
    env = dict(os.environ)
    env["BENCH_OUTPUT_DIR"] = out_dir
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "--benchmark-disable",
         *nodes], cwd=REPO_ROOT, env=env)
    return proc.returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff fresh benchmark output against committed "
                    "BENCH_*.json baselines.")
    parser.add_argument("--smoke", action="store_true",
                        help="fast gate: E4 (TEST preset) only")
    parser.add_argument("--fresh-dir", default=None,
                        help="diff existing BENCH_*.json in this directory "
                             "instead of running the benchmarks")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the full comparison result here")
    args = parser.parse_args(argv)

    slugs = ["E4"] if args.smoke else ["E4", "E2", "handshake_loss",
                                       "obs_overhead"]
    results = []
    exit_code = 0

    with tempfile.TemporaryDirectory(prefix="bench-gate-") as scratch:
        fresh_dir = args.fresh_dir or scratch
        if args.fresh_dir is None:
            rc = run_benches(slugs, fresh_dir)
            if rc != 0:
                print(f"bench-gate: benchmark run failed (exit {rc})",
                      file=sys.stderr)
                exit_code = rc or 1
        for slug in slugs:
            baseline = load_json(os.path.join(REPO_ROOT,
                                              f"BENCH_{slug}.json"))
            fresh = load_json(os.path.join(fresh_dir, f"BENCH_{slug}.json"))
            if baseline is None:
                results.append({"experiment": slug, "ok": False,
                                "failures": ["no committed baseline"]})
                exit_code = exit_code or 1
                continue
            if fresh is None:
                results.append({"experiment": slug, "ok": False,
                                "failures": ["no fresh BENCH json produced"]})
                exit_code = exit_code or 1
                continue
            result = compare(slug, baseline, fresh)
            results.append(result)
            if not result["ok"]:
                exit_code = exit_code or 1

    summary = {"ok": exit_code == 0, "mode": "smoke" if args.smoke
               else "full", "results": results}
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    for result in results:
        status = "OK" if result["ok"] else "FAIL"
        checked = len(result.get("checked", []))
        print(f"bench-gate: {result['experiment']}: {status} "
              f"({checked} gated metrics)")
        for failure in result["failures"]:
            print(f"  regression: {failure}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark regression gate: fresh BENCH_*.json runs vs committed baselines.

Each committed ``BENCH_<slug>.json`` at the repo root is a baseline.
The gate re-runs the benchmarks that produce a chosen subset of them
into a scratch directory (``BENCH_OUTPUT_DIR`` redirects the reporter,
so the committed files are never touched), then diffs the ``values``
dicts metric by metric under per-metric tolerance rules:

* ``exact``      -- value must match the baseline bit for bit
                    (operation counts, wire byte sizes, round counts).
* ``min_ratio``  -- fresh value must be at least ``ratio`` times the
                    baseline (speedups: generous floors absorb host
                    noise while still catching a lost optimization).
* ``max_ratio``  -- fresh value must stay under ``ratio`` times the
                    baseline (latencies, if ever gated).
* ``min_value``  -- fresh value must be at least ``value * (1 - slack)``,
                    with **no baseline dependence**: absolute floors
                    from the paper's acceptance criteria (batch-core
                    speedup >= 6x, pool speedup >= 1x) hold on any host
                    regardless of what machine recorded the baseline.

A rule may carry ``"metric"`` to gate a metric under a distinct rule
key (so one metric can hold several rules), and ``"when"`` --
``{"metric": ..., "at_least": ...}`` evaluated against the *fresh*
values -- to apply only on qualifying hosts (e.g. the pool's >= 2x
gate only where ``host_cores >= 4``); a rule whose condition does not
hold is recorded as skipped, not passed.

Modes:

* ``--smoke``  -- E4 (TEST-preset message sizes) plus the
  ``revocation_scale``, ``crash_recovery``, and ``health_detection``
  scale/identity/detection gates, all deterministic and fast
  (seconds).  This is the CI pull-request gate.
* default      -- the smoke slugs plus E2 (SS512 operation counts;
  slower), the virtual-time handshake-loss sweep (exact completion
  counts), the obs overhead boolean, and the two batch-verification
  benches (``batch_core``, ``parallel_verify``; minutes on slow
  hosts, which is why they ride the full gate and not --smoke).

Exit status is non-zero when any gated metric regresses beyond its
tolerance, when a fresh value for a gated metric is missing, or when
the bench run itself fails.  ``--fresh-dir`` skips the bench run and
diffs existing JSON in that directory (used by the unit tests).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: slug -> pytest node ids that (re)generate BENCH_<slug>.json.
BENCH_TARGETS: Dict[str, List[str]] = {
    "E4": ["benchmarks/bench_handshake.py::test_e4_rounds_and_bytes"],
    "E2": ["benchmarks/bench_op_counts.py::test_e2_operation_count_table"],
    "handshake_loss": [
        "benchmarks/bench_handshake_loss.py::test_handshake_loss_sweep"],
    "obs_overhead": [
        "benchmarks/bench_obs_overhead.py::test_obs_overhead"],
    "batch_core": [
        "benchmarks/bench_batch_core.py::test_batch_core_speedup"],
    "parallel_verify": [
        "benchmarks/bench_parallel_verify.py::test_e10_parallel_verify"],
    "revocation_scale": [
        "benchmarks/bench_revocation_scale.py::test_revocation_scale"],
    "crash_recovery": [
        "benchmarks/bench_crash_recovery.py::test_crash_recovery"],
    "health_detection": [
        "benchmarks/bench_health_detection.py::test_health_detection"],
}

#: slug -> rule-key -> rule.  A rule is ``{"kind": "exact"}``,
#: ``{"kind": "min_ratio"|"max_ratio", "ratio": float}``, or
#: ``{"kind": "min_value", "value": float, "slack": float}``.  The
#: gated metric is the rule key unless the rule carries ``"metric"``;
#: an optional ``"when": {"metric": ..., "at_least": ...}`` (checked
#: against fresh values) makes the rule conditional.  Metrics not
#: listed here are reported as informational, never gated.
GATES: Dict[str, Dict[str, dict]] = {
    "E4": {
        "bytes_M_1": {"kind": "exact"},
        "bytes_M_2": {"kind": "exact"},
        "bytes_M_3": {"kind": "exact"},
        "bytes_Mt_1": {"kind": "exact"},
        "bytes_Mt_2": {"kind": "exact"},
        "bytes_Mt_3": {"kind": "exact"},
        "bytes_group_signature": {"kind": "exact"},
        "rounds_per_protocol": {"kind": "exact"},
    },
    "E2": {
        "sign_exp": {"kind": "exact"},
        "sign_pair": {"kind": "exact"},
        "verify_url0_exp": {"kind": "exact"},
        "verify_url0_pair": {"kind": "exact"},
        "verify_url1_exp": {"kind": "exact"},
        "verify_url1_pair": {"kind": "exact"},
        "verify_url5_exp": {"kind": "exact"},
        "verify_url5_pair": {"kind": "exact"},
        "verify_url10_exp": {"kind": "exact"},
        "verify_url10_pair": {"kind": "exact"},
        "fast_verify_exp": {"kind": "exact"},
        "fast_verify_pair": {"kind": "exact"},
    },
    # The loss sweep runs entirely in virtual time on seeded RNGs, so
    # completion / attempt / retransmit counts are bit-deterministic;
    # median delays stay informational (float formatting only).
    "handshake_loss": {
        f"{metric}_loss{loss}_retry_{mode}": {"kind": "exact"}
        for metric in ("completed", "attempts", "retransmits")
        for loss in (0, 5, 15, 30)
        for mode in ("off", "on")
    },
    # Wall-clock overhead is host-dependent; the bench itself reduces
    # it to a pass/fail boolean with orders-of-magnitude headroom, and
    # the gate checks that boolean exactly.
    "obs_overhead": {
        "overhead_le_10pct": {"kind": "exact"},
        "iterations": {"kind": "exact"},
    },
    # The batch core's acceptance floor is absolute (>= 6x at batch 16
    # on the paper workload), so it is gated as min_value -- a slower
    # host cannot lower the bar by re-recording the baseline.  The op
    # accounting invariants are exact.
    "batch_core": {
        "batch_speedup_16": {"kind": "min_value", "value": 6.0,
                             "slack": 0.05},
        "op_counts_identical": {"kind": "exact"},
        "url_size": {"kind": "exact"},
        "gate_batch_size": {"kind": "exact"},
        "pairings_per_sig": {"kind": "exact"},
        "exps_per_sig": {"kind": "exact"},
    },
    # The pool must never lose to serial on any host (auto-serial makes
    # that safe on 1 core), and must win >= 2x where it actually runs
    # workers across >= 4 cores.  ``host_cores`` is recorded by the
    # bench and gated >= 1, which doubles as a presence check.
    "parallel_verify": {
        "speedup": {"kind": "min_value", "value": 1.0, "slack": 0.05},
        "speedup_parallel": {"kind": "min_value", "metric": "speedup",
                             "value": 2.0, "slack": 0.05,
                             "when": {"metric": "host_cores",
                                      "at_least": 4}},
        "host_cores": {"kind": "min_value", "value": 1},
        "batch_size": {"kind": "exact"},
        "url_size": {"kind": "exact"},
        "chunk_size": {"kind": "exact"},
    },
    # Metropolitan revocation (ISSUE 8 acceptance): the sharded+cached
    # scan must beat the linear Eq.3 scan >= 5x at |URL| = 1000 as an
    # absolute floor, the bit-identity and cache contracts are
    # booleans checked exactly, and the epidemic overlay must have
    # converged deterministically under the 15% loss model.  Router
    # count and URL sizes stay informational: the nightly large run
    # (BENCH_REVOCATION_LARGE=1) legitimately changes them.
    "revocation_scale": {
        "speedup_url1000": {"kind": "min_value", "value": 5.0,
                            "slack": 0.05},
        "outcomes_identical": {"kind": "exact"},
        "token_index_identical": {"kind": "exact"},
        "rebuild_pairing_free": {"kind": "exact"},
        "epidemic_converged": {"kind": "exact"},
        "epidemic_deterministic": {"kind": "exact"},
        "epidemic_loss_pct": {"kind": "exact"},
        "num_shards": {"kind": "exact"},
        "required_speedup": {"kind": "exact"},
    },
    # Durable crash recovery (ISSUE 9 acceptance): a crashed/restored
    # router must be observably indistinguishable from one that never
    # crashed -- the four identity booleans and the degraded re-entry
    # check are exact -- and the signed-checkpoint warm-up must beat
    # the cold shard build >= 5x at |URL| = 1000 with *zero* pairings
    # on the warm path (both absolute floors, baseline-independent).
    "crash_recovery": {
        "outcomes_identical": {"kind": "exact"},
        "messages_identical": {"kind": "exact"},
        "token_index_identical": {"kind": "exact"},
        "replay_storm_identical": {"kind": "exact"},
        "degraded_reentry": {"kind": "exact"},
        "warmup_speedup": {"kind": "min_value", "value": 5.0,
                           "slack": 0.05},
        "warm_pairings": {"kind": "exact"},
        "cold_pairings": {"kind": "exact"},
        "warmup_url_size": {"kind": "exact"},
        "warmup_num_shards": {"kind": "exact"},
        "required_warmup_speedup": {"kind": "exact"},
    },
    # Health observatory (ISSUE 10 acceptance): every injected router
    # kill and channel sever detected within two telemetry windows,
    # zero alerts on the fault-free baseline, bit-identical incident
    # timelines per seed, and health evaluation costing <= 3% of the
    # run (a boolean like obs_overhead's, so host noise cannot flake
    # the gate as long as the ceiling holds).
    "health_detection": {
        "all_incidents_detected": {"kind": "exact"},
        "mttd_windows_le_2": {"kind": "exact"},
        "baseline_alerts": {"kind": "exact"},
        "timelines_identical": {"kind": "exact"},
        "overhead_le_3pct": {"kind": "exact"},
        "incidents_total": {"kind": "exact"},
        "incidents_detected": {"kind": "exact"},
        "chaos_seeds": {"kind": "exact"},
    },
}


def check_metric(name: str, rule: dict, baseline, fresh) -> Optional[str]:
    """One metric under one rule; returns a failure message or None."""
    if fresh is None:
        return f"{name}: missing from fresh run (baseline {baseline!r})"
    kind = rule["kind"]
    if kind == "exact":
        if fresh != baseline:
            return f"{name}: expected {baseline!r}, got {fresh!r}"
        return None
    if kind == "min_value":
        value = float(rule["value"])
        slack = float(rule.get("slack", 0.0))
        floor = value * (1.0 - slack)
        if float(fresh) < floor:
            return (f"{name}: {float(fresh):.4g} below required "
                    f"{value:g} (floor {floor:.4g} with {slack:g} slack)")
        return None
    if kind not in ("min_ratio", "max_ratio"):
        raise ValueError(f"unknown gate kind {kind!r} for {name}")
    ratio = float(rule["ratio"])
    baseline = float(baseline)
    fresh = float(fresh)
    if kind == "min_ratio":
        floor = baseline * ratio
        if fresh < floor:
            return (f"{name}: {fresh:.4g} below floor {floor:.4g} "
                    f"({ratio:g}x baseline {baseline:.4g})")
        return None
    ceiling = baseline * ratio
    if fresh > ceiling:
        return (f"{name}: {fresh:.4g} above ceiling {ceiling:.4g} "
                f"({ratio:g}x baseline {baseline:.4g})")
    return None


def compare(slug: str, baseline: dict, fresh: dict,
            gates: Optional[Dict[str, dict]] = None) -> dict:
    """Diff one experiment's values; returns a JSON-able result dict."""
    gates = GATES.get(slug, {}) if gates is None else gates
    base_values = baseline.get("values", {})
    fresh_values = fresh.get("values", {})
    failures = []
    checked = []
    skipped = []
    gated_metrics = {rule.get("metric", name)
                     for name, rule in gates.items()}
    for name, rule in sorted(gates.items()):
        metric = rule.get("metric", name)
        label = name if metric == name else f"{name}[{metric}]"
        when = rule.get("when")
        if when is not None:
            # Conditional gates look at the fresh run (the host that
            # produced it), not at whatever host cut the baseline.
            condition = fresh_values.get(when["metric"])
            if condition is None or condition < when["at_least"]:
                skipped.append(name)
                continue
        if rule["kind"] != "min_value" and metric not in base_values:
            # A baseline-relative gate with no committed baseline is a
            # config error, not a silent pass.  min_value floors are
            # absolute and carry no baseline dependence.
            failures.append(f"{label}: gated but absent from baseline")
            continue
        checked.append(name)
        message = check_metric(label, rule, base_values.get(metric),
                               fresh_values.get(metric))
        if message is not None:
            failures.append(message)
    informational = {name: {"baseline": base_values.get(name),
                            "fresh": fresh_values.get(name)}
                     for name in sorted(set(base_values) | set(fresh_values))
                     if name not in gated_metrics}
    return {"experiment": slug, "ok": not failures, "checked": checked,
            "skipped": skipped, "failures": failures,
            "informational": informational}


def load_json(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def run_benches(slugs: List[str], out_dir: str) -> int:
    """Regenerate the selected BENCH files into ``out_dir``."""
    nodes = [node for slug in slugs for node in BENCH_TARGETS[slug]]
    env = dict(os.environ)
    env["BENCH_OUTPUT_DIR"] = out_dir
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "--benchmark-disable",
         *nodes], cwd=REPO_ROOT, env=env)
    return proc.returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff fresh benchmark output against committed "
                    "BENCH_*.json baselines.")
    parser.add_argument("--smoke", action="store_true",
                        help="fast gate: E4 (TEST preset) only")
    parser.add_argument("--fresh-dir", default=None,
                        help="diff existing BENCH_*.json in this directory "
                             "instead of running the benchmarks")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the full comparison result here")
    args = parser.parse_args(argv)

    slugs = (["E4", "revocation_scale", "crash_recovery",
              "health_detection"] if args.smoke
             else ["E4", "E2", "handshake_loss", "obs_overhead",
                   "batch_core", "parallel_verify", "revocation_scale",
                   "crash_recovery", "health_detection"])
    results = []
    exit_code = 0

    with tempfile.TemporaryDirectory(prefix="bench-gate-") as scratch:
        fresh_dir = args.fresh_dir or scratch
        if args.fresh_dir is None:
            rc = run_benches(slugs, fresh_dir)
            if rc != 0:
                print(f"bench-gate: benchmark run failed (exit {rc})",
                      file=sys.stderr)
                exit_code = rc or 1
        for slug in slugs:
            baseline = load_json(os.path.join(REPO_ROOT,
                                              f"BENCH_{slug}.json"))
            fresh = load_json(os.path.join(fresh_dir, f"BENCH_{slug}.json"))
            if baseline is None:
                results.append({"experiment": slug, "ok": False,
                                "failures": ["no committed baseline"]})
                exit_code = exit_code or 1
                continue
            if fresh is None:
                results.append({"experiment": slug, "ok": False,
                                "failures": ["no fresh BENCH json produced"]})
                exit_code = exit_code or 1
                continue
            result = compare(slug, baseline, fresh)
            results.append(result)
            if not result["ok"]:
                exit_code = exit_code or 1

    summary = {"ok": exit_code == 0, "mode": "smoke" if args.smoke
               else "full", "results": results}
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    for result in results:
        status = "OK" if result["ok"] else "FAIL"
        checked = len(result.get("checked", []))
        print(f"bench-gate: {result['experiment']}: {status} "
              f"({checked} gated metrics)")
        for failure in result["failures"]:
            print(f"  regression: {failure}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
